(* Tests for the Mc_task work-stealing scheduler and the real-domain
   applications built on it (Mc_search / Mc_app). *)

open Cpool_game
module Mc_task = Cpool_tasks.Mc_task

let kinds =
  [
    ("linear", Cpool_mc.Mc_pool.Linear);
    ("random", Cpool_mc.Mc_pool.Random);
    ("tree", Cpool_mc.Mc_pool.Tree);
    ("hinted", Cpool_mc.Mc_pool.Hinted);
  ]

let pool_scheduler ?workers kind ~domains =
  Mc_task.of_config ?workers
    { Cpool_mc.Mc_pool.Config.default with kind; segments = domains + 1 }

(* Run [f] against a fresh scheduler, always shutting it down. *)
let with_scheduler mk f =
  let t = mk () in
  match f t with
  | v ->
    Mc_task.shutdown t;
    v
  | exception e ->
    Mc_task.shutdown t;
    raise e

(* --- futures ----------------------------------------------------------- *)

let test_fork_await () =
  with_scheduler (fun () -> pool_scheduler Cpool_mc.Mc_pool.Linear ~domains:2)
    (fun t ->
      let fut = Mc_task.fork t (fun () -> 6 * 7) in
      Alcotest.(check int) "value" 42 (Mc_task.await fut);
      (* A settled future can be awaited again, cheaply. *)
      Alcotest.(check int) "idempotent" 42 (Mc_task.await fut))

let test_join_order () =
  with_scheduler (fun () -> pool_scheduler Cpool_mc.Mc_pool.Random ~domains:2)
    (fun t ->
      let futs = List.init 32 (fun i -> Mc_task.fork t (fun () -> i * i)) in
      Alcotest.(check (list int))
        "join preserves order"
        (List.init 32 (fun i -> i * i))
        (Mc_task.join futs))

exception Boom of int

let test_exception_reraised () =
  with_scheduler (fun () -> pool_scheduler Cpool_mc.Mc_pool.Tree ~domains:2)
    (fun t ->
      let fut = Mc_task.fork t (fun () -> raise (Boom 7)) in
      match Mc_task.await fut with
      | _ -> Alcotest.fail "expected the worker's exception at await"
      | exception Boom 7 -> ()
      | exception e ->
        Alcotest.failf "expected Boom 7, got %s" (Printexc.to_string e))

let test_exception_keeps_scheduler_alive () =
  with_scheduler (fun () -> pool_scheduler Cpool_mc.Mc_pool.Linear ~domains:2)
    (fun t ->
      let bad = Mc_task.fork t (fun () -> failwith "task failed") in
      (match Mc_task.await bad with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure _ -> ());
      (* The worker that ran the failing task must still serve others. *)
      let ok = Mc_task.join (List.init 16 (fun i -> Mc_task.fork t (fun () -> i))) in
      Alcotest.(check (list int)) "still scheduling" (List.init 16 Fun.id) ok)

(* Nested fork/join from inside workers: help-first await must keep a
   bounded fleet moving through a task graph deeper than the fleet. *)
let rec fib t n =
  if n < 2 then n
  else
    let a = Mc_task.fork t (fun () -> fib t (n - 1)) in
    let b = fib t (n - 2) in
    Mc_task.await a + b

let test_nested_fork_join kind () =
  with_scheduler (fun () -> pool_scheduler kind ~domains:2)
    (fun t ->
      Alcotest.(check int) "fib 15" 610 (Mc_task.await (Mc_task.fork t (fun () -> fib t 15)));
      Alcotest.(check int)
        "conservation" (Mc_task.forked t) (Mc_task.processed t))

let test_stack_backend_equivalent () =
  with_scheduler (fun () -> Mc_task.lock_stack ~workers:2)
    (fun t ->
      Alcotest.(check int) "fib 15" 610 (Mc_task.await (Mc_task.fork t (fun () -> fib t 15)));
      Alcotest.(check int) "conservation" (Mc_task.forked t) (Mc_task.processed t);
      Alcotest.(check int) "no steals on a stack" 0 (Mc_task.steals t);
      Alcotest.(check string) "label" "stack" (Mc_task.label t))

(* --- lifecycle --------------------------------------------------------- *)

let test_of_config_validation () =
  Alcotest.check_raises "one segment"
    (Invalid_argument
       "Mc_task.of_config: need at least 2 segments (workers + the submission slot)")
    (fun () ->
      ignore (Mc_task.of_config { Cpool_mc.Mc_pool.Config.default with segments = 1 }));
  Alcotest.check_raises "too many workers"
    (Invalid_argument "Mc_task.of_config: workers must be in 1 .. segments - 1")
    (fun () ->
      ignore
        (Mc_task.of_config ~workers:3
           { Cpool_mc.Mc_pool.Config.default with segments = 3 }))

let test_shutdown_idempotent () =
  let t = pool_scheduler Cpool_mc.Mc_pool.Linear ~domains:2 in
  let fut = Mc_task.fork t (fun () -> 1) in
  Alcotest.(check int) "value" 1 (Mc_task.await fut);
  Mc_task.shutdown t;
  Mc_task.shutdown t;
  Alcotest.(check int) "workers drained" 0 (Mc_task.live_workers t)

let test_fork_after_shutdown () =
  let t = pool_scheduler Cpool_mc.Mc_pool.Linear ~domains:1 in
  Mc_task.shutdown t;
  Alcotest.check_raises "fork rejected"
    (Invalid_argument "Mc_task.fork: scheduler is shut down") (fun () ->
      ignore (Mc_task.fork t (fun () -> ())))

(* --- elasticity -------------------------------------------------------- *)

let test_grow_shrink_conservation kind () =
  (* Start small on a wide pool, grow mid-run, shrink mid-run: every forked
     task must still be processed exactly once. *)
  with_scheduler (fun () -> pool_scheduler kind ~domains:4 ~workers:1)
    (fun t ->
      Alcotest.(check int) "starts with one worker" 1 (Mc_task.live_workers t);
      Alcotest.(check int) "capacity" 4 (Mc_task.max_workers t);
      let phase1 = List.init 64 (fun i -> Mc_task.fork t (fun () -> i)) in
      Alcotest.(check int) "grow adds" 3 (Mc_task.grow t 3);
      Alcotest.(check int) "grow is capped" 0 (Mc_task.grow t 1);
      let phase2 = List.init 64 (fun i -> Mc_task.fork t (fun () -> -i)) in
      Alcotest.(check int)
        "phase1 sum" (63 * 64 / 2)
        (List.fold_left ( + ) 0 (Mc_task.join phase1));
      let retired = Mc_task.shrink t 2 in
      Alcotest.(check bool) "shrink honored" true (retired >= 0 && retired <= 2);
      let phase3 = List.init 64 (fun i -> Mc_task.fork t (fun () -> i * 2)) in
      Alcotest.(check int)
        "phase2 sum"
        (-(63 * 64 / 2))
        (List.fold_left ( + ) 0 (Mc_task.join phase2));
      Alcotest.(check int)
        "phase3 sum" (63 * 64)
        (List.fold_left ( + ) 0 (Mc_task.join phase3));
      Mc_task.shutdown t;
      Alcotest.(check int)
        "processed = forked" (Mc_task.forked t) (Mc_task.processed t);
      Alcotest.(check int) "all workers retired" 0 (Mc_task.live_workers t))

(* --- applications ------------------------------------------------------ *)

(* Parallel minimax must return exactly the sequential value: the fork
   frontier falls back to Minimax.value, so any disagreement is a
   scheduler bug (lost task, double execution, torn future). *)
let test_minimax_exact kind () =
  let plies = 2 in
  let expected = Minimax.value ~plies Board.empty in
  List.iter
    (fun domains ->
      with_scheduler (fun () -> pool_scheduler kind ~domains)
        (fun t ->
          Alcotest.(check int)
            (Printf.sprintf "plies=%d domains=%d" plies domains)
            expected
            (Mc_search.minimax_value t ~fork_plies:1 ~plies Board.empty);
          Alcotest.(check int)
            "conservation" (Mc_task.forked t) (Mc_task.processed t)))
    [ 1; 2; 4 ]

let test_minimax_stack_exact () =
  let plies = 2 in
  let expected = Minimax.value ~plies Board.empty in
  with_scheduler (fun () -> Mc_task.lock_stack ~workers:2)
    (fun t ->
      Alcotest.(check int) "stack minimax" expected
        (Mc_search.minimax_value t ~fork_plies:1 ~plies Board.empty))

let test_nqueens_known kind () =
  List.iter
    (fun (n, domains) ->
      with_scheduler (fun () -> pool_scheduler kind ~domains)
        (fun t ->
          let solutions, nodes =
            Mc_search.nqueens_solutions ~fork_depth:2 ~n t
          in
          (match Nqueens.known_solutions n with
          | Some k ->
            Alcotest.(check int) (Printf.sprintf "%d-queens solutions" n) k solutions
          | None -> Alcotest.failf "no published count for n=%d" n);
          let seq_solutions, seq_nodes = Backtrack.sequential (Nqueens.problem ~n) in
          Alcotest.(check int) "solutions vs sequential" seq_solutions solutions;
          Alcotest.(check int) "nodes vs sequential" seq_nodes nodes))
    [ (6, 2); (8, 4) ]

let test_search_validation () =
  with_scheduler (fun () -> pool_scheduler Cpool_mc.Mc_pool.Linear ~domains:1)
    (fun t ->
      Alcotest.check_raises "negative plies"
        (Invalid_argument "Mc_search.minimax_value: negative plies")
        (fun () -> ignore (Mc_search.minimax_value t ~plies:(-1) Board.empty));
      Alcotest.check_raises "negative fork frontier"
        (Invalid_argument "Mc_search.minimax_value: negative fork_plies")
        (fun () ->
          ignore (Mc_search.minimax_value t ~fork_plies:(-1) ~plies:1 Board.empty));
      Alcotest.check_raises "negative fork depth"
        (Invalid_argument "Mc_search.backtrack_count: negative fork_depth")
        (fun () ->
          ignore (Mc_search.nqueens_solutions ~fork_depth:(-1) ~n:4 t)))

(* --- the mc-app grid and its artifact ---------------------------------- *)

let test_mc_app_smoke () =
  let config =
    {
      Mc_app.kinds = [ Cpool_mc.Mc_pool.Linear; Cpool_mc.Mc_pool.Hinted ];
      domain_counts = [ 1; 2 ];
      plies = 1;
      fork_plies = 1;
      queens = 6;
      fork_depth = 2;
      repeats = 1;
      seed = 7L;
    }
  in
  let summary = Mc_app.run config in
  Alcotest.(check int) "grid size" (2 * 2 * 3) (List.length summary.Mc_app.cells);
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s/%d ok" (Mc_app.app_to_string c.Mc_app.app)
           (Mc_app.scheduler_to_string c.Mc_app.scheduler)
           c.Mc_app.domains)
        true c.Mc_app.ok)
    summary.Mc_app.cells;
  (* The artifact must round-trip through text and validate. *)
  let json = Mc_app.to_json summary in
  (match Cpool_util.Json.parse (Cpool_util.Json.to_string json) with
  | Error msg -> Alcotest.failf "artifact does not re-parse: %s" msg
  | Ok reparsed -> (
    match Mc_app.validate_json reparsed with
    | Ok cells -> Alcotest.(check int) "validated cells" 12 cells
    | Error msg -> Alcotest.failf "artifact invalid: %s" msg));
  (* Corrupting a cell's result must be caught. *)
  let corrupt =
    match json with
    | Cpool_util.Json.Assoc fields ->
      Cpool_util.Json.Assoc
        (List.map
           (function
             | "cells", Cpool_util.Json.List (Cpool_util.Json.Assoc cell :: rest) ->
               ( "cells",
                 Cpool_util.Json.List
                   (Cpool_util.Json.Assoc
                      (List.map
                         (function
                           | "result", Cpool_util.Json.Int v ->
                             ("result", Cpool_util.Json.Int (v + 1))
                           | kv -> kv)
                         cell)
                   :: rest) )
             | kv -> kv)
           fields)
    | _ -> Alcotest.fail "artifact is not an object"
  in
  match Mc_app.validate_json corrupt with
  | Ok _ -> Alcotest.fail "validator accepted a corrupted result"
  | Error _ -> ()

let per_kind name f =
  List.map
    (fun (kname, kind) ->
      Alcotest.test_case (Printf.sprintf "%s (%s)" name kname) `Quick (f kind))
    kinds

let suites =
  [
    ( "tasks.futures",
      [
        Alcotest.test_case "fork and await" `Quick test_fork_await;
        Alcotest.test_case "join keeps order" `Quick test_join_order;
        Alcotest.test_case "exception re-raised at await" `Quick test_exception_reraised;
        Alcotest.test_case "scheduler survives a failing task" `Quick
          test_exception_keeps_scheduler_alive;
        Alcotest.test_case "stack backend equivalent" `Quick test_stack_backend_equivalent;
      ]
      @ per_kind "nested fork/join" test_nested_fork_join );
    ( "tasks.lifecycle",
      [
        Alcotest.test_case "of_config validation" `Quick test_of_config_validation;
        Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
        Alcotest.test_case "fork after shutdown rejected" `Quick test_fork_after_shutdown;
      ]
      @ per_kind "grow/shrink conserves tasks" test_grow_shrink_conservation );
    ( "tasks.applications",
      [
        Alcotest.test_case "stack minimax exact" `Quick test_minimax_stack_exact;
        Alcotest.test_case "search parameter validation" `Quick test_search_validation;
        Alcotest.test_case "mc-app grid + artifact" `Quick test_mc_app_smoke;
      ]
      @ per_kind "minimax equals sequential" test_minimax_exact
      @ per_kind "n-queens equals published counts" test_nqueens_known );
  ]
