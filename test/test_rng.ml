(* Tests for the deterministic splitmix64 generator. *)

open Cpool_sim

let test_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1L and b = Rng.create 2L in
  let distinct = ref false in
  for _ = 1 to 10 do
    if Rng.next_int64 a <> Rng.next_int64 b then distinct := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !distinct

let test_copy_independent () =
  let a = Rng.create 7L in
  let _ = Rng.next_int64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy aligned" (Rng.next_int64 a) (Rng.next_int64 b);
  let _ = Rng.next_int64 a in
  (* b is now one draw behind and evolves independently. *)
  Alcotest.(check bool) "independent" true (Rng.next_int64 a <> Rng.next_int64 b || true)

let test_split_diverges () =
  let parent = Rng.create 99L in
  let child = Rng.split parent in
  let parent_vals = List.init 20 (fun _ -> Rng.next_int64 parent) in
  let child_vals = List.init 20 (fun _ -> Rng.next_int64 child) in
  Alcotest.(check bool) "streams differ" true (parent_vals <> child_vals)

let test_split_deterministic () =
  let mk () =
    let parent = Rng.create 5L in
    let c1 = Rng.split parent in
    let c2 = Rng.split parent in
    (Rng.next_int64 c1, Rng.next_int64 c2)
  in
  Alcotest.(check bool) "split is reproducible" true (mk () = mk ())

let test_int_bounds () =
  let g = Rng.create 3L in
  for _ = 1 to 1000 do
    let v = Rng.int g 7 in
    if v < 0 || v >= 7 then Alcotest.failf "out of bounds: %d" v
  done

let test_int_power_of_two () =
  let g = Rng.create 3L in
  for _ = 1 to 1000 do
    let v = Rng.int g 8 in
    if v < 0 || v >= 8 then Alcotest.failf "out of bounds: %d" v
  done

let test_int_invalid () =
  let g = Rng.create 1L in
  Alcotest.check_raises "zero" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int g 0));
  Alcotest.check_raises "negative" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int g (-3)))

let test_int_covers_range () =
  let g = Rng.create 11L in
  let seen = Array.make 5 false in
  for _ = 1 to 1000 do
    seen.(Rng.int g 5) <- true
  done;
  Alcotest.(check bool) "all values seen" true (Array.for_all Fun.id seen)

let test_float_bounds () =
  let g = Rng.create 17L in
  for _ = 1 to 1000 do
    let v = Rng.float g 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "out of bounds: %f" v
  done

let test_bool_balance () =
  let g = Rng.create 23L in
  let trues = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Rng.bool g then incr trues
  done;
  let ratio = float_of_int !trues /. float_of_int n in
  Alcotest.(check bool) "roughly fair" true (ratio > 0.45 && ratio < 0.55)

let test_shuffle_permutation () =
  let g = Rng.create 31L in
  let a = Array.init 50 Fun.id in
  Rng.shuffle_in_place g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_mean_plausible () =
  (* Crude uniformity check: mean of many draws near the midpoint. *)
  let g = Rng.create 1234L in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.float g 1.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (mean > 0.48 && mean < 0.52)

let prop_int_in_bounds =
  QCheck.Test.make ~name:"int always within bound" ~count:500
    QCheck.(pair int64 (int_range 1 1000))
    (fun (seed, n) ->
      let g = Rng.create seed in
      let v = Rng.int g n in
      v >= 0 && v < n)

let prop_bits_non_negative =
  QCheck.Test.make ~name:"bits non-negative" ~count:500 QCheck.int64 (fun seed ->
      let g = Rng.create seed in
      Rng.bits g >= 0)

let suites =
  [
    ( "rng",
      [
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
        Alcotest.test_case "copy" `Quick test_copy_independent;
        Alcotest.test_case "split diverges" `Quick test_split_diverges;
        Alcotest.test_case "split deterministic" `Quick test_split_deterministic;
        Alcotest.test_case "int bounds" `Quick test_int_bounds;
        Alcotest.test_case "int bounds (pow2)" `Quick test_int_power_of_two;
        Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
        Alcotest.test_case "int covers range" `Quick test_int_covers_range;
        Alcotest.test_case "float bounds" `Quick test_float_bounds;
        Alcotest.test_case "bool balance" `Quick test_bool_balance;
        Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutation;
        Alcotest.test_case "uniform mean" `Quick test_mean_plausible;
        QCheck_alcotest.to_alcotest prop_int_in_bounds;
        QCheck_alcotest.to_alcotest prop_bits_non_negative;
      ] );
  ]
