(* Tests for the shared-count livelock detector. *)

open Cpool

let test_counts () =
  Sim_harness.in_proc (fun () ->
      let t = Termination.create ~home:0 in
      Alcotest.(check int) "no active" 0 (Termination.active_free t);
      Termination.join t;
      Termination.join t;
      Alcotest.(check int) "two active" 2 (Termination.active_free t);
      Termination.begin_search t;
      Alcotest.(check int) "one searching" 1 (Termination.searching_free t);
      Alcotest.(check bool) "not all searching" false (Termination.should_abort t);
      Termination.begin_search t;
      Alcotest.(check bool) "all searching" true (Termination.should_abort t);
      Termination.end_search t;
      Termination.end_search t;
      Termination.leave t;
      Termination.leave t;
      Alcotest.(check int) "none left" 0 (Termination.active_free t))

let test_abort_when_participants_leave () =
  (* A searcher must abort once everyone else has left, even though not
     everyone is searching. *)
  Sim_harness.in_proc (fun () ->
      let t = Termination.create ~home:0 in
      Termination.join t;
      (* A second participant joins and leaves. *)
      Termination.join t;
      Termination.leave t;
      Termination.begin_search t;
      Alcotest.(check bool) "sole survivor searching" true (Termination.should_abort t);
      Termination.end_search t)

let test_searching_excess_is_abort () =
  (* searching > active (transiently possible when a leave races a search)
     still reads as abort rather than wedging. *)
  Sim_harness.in_proc (fun () ->
      let t = Termination.create ~home:0 in
      Termination.join t;
      Termination.begin_search t;
      Termination.begin_search t;
      Alcotest.(check bool) "excess aborts" true (Termination.should_abort t))

let suites =
  [
    ( "termination",
      [
        Alcotest.test_case "counts" `Quick test_counts;
        Alcotest.test_case "abort when others leave" `Quick test_abort_when_participants_leave;
        Alcotest.test_case "excess searchers abort" `Quick test_searching_excess_is_abort;
      ] );
  ]
