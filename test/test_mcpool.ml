(* Tests for the multicore (OCaml 5 domains) concurrent pool. *)

open Cpool_mc

let kinds = [ ("linear", Mc_pool.Linear); ("random", Mc_pool.Random); ("tree", Mc_pool.Tree) ]

(* --- Single-domain semantics --- *)

let test_create_invalid () =
  Alcotest.check_raises "segments" (Invalid_argument "Mc_pool.create: segments must be positive")
    (fun () -> ignore (Mc_pool.create ~segments:0 () : unit Mc_pool.t))

let test_register_slots () =
  let pool : int Mc_pool.t = Mc_pool.create ~segments:2 () in
  let h0 = Mc_pool.register pool in
  let h1 = Mc_pool.register pool in
  Alcotest.(check int) "first slot" 0 (Mc_pool.slot h0);
  Alcotest.(check int) "second slot" 1 (Mc_pool.slot h1);
  (match Mc_pool.register pool with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected registration failure");
  Alcotest.(check int) "segments" 2 (Mc_pool.segments pool)

let test_register_at () =
  let pool : int Mc_pool.t = Mc_pool.create ~segments:3 () in
  let h2 = Mc_pool.register_at pool 2 in
  Alcotest.(check int) "explicit slot" 2 (Mc_pool.slot h2);
  Alcotest.check_raises "reclaim" (Invalid_argument "Mc_pool.register_at: slot already claimed")
    (fun () -> ignore (Mc_pool.register_at pool 2));
  (* register skips the claimed slot *)
  Alcotest.(check int) "register skips" 0 (Mc_pool.slot (Mc_pool.register pool))

let test_local_roundtrip () =
  let pool = Mc_pool.create ~segments:2 () in
  let h = Mc_pool.register pool in
  Mc_pool.add pool h "a";
  Mc_pool.add pool h "b";
  Alcotest.(check int) "size" 2 (Mc_pool.size pool);
  Alcotest.(check (option string)) "lifo" (Some "b") (Mc_pool.try_remove_local pool h);
  Alcotest.(check (option string)) "next" (Some "a") (Mc_pool.try_remove_local pool h);
  Alcotest.(check (option string)) "empty" None (Mc_pool.try_remove_local pool h)

let test_steal_across_slots kind () =
  let pool = Mc_pool.create ~kind ~segments:4 () in
  let h0 = Mc_pool.register_at pool 0 in
  let h2 = Mc_pool.register_at pool 2 in
  for i = 1 to 8 do
    Mc_pool.add pool h2 i
  done;
  (match Mc_pool.try_remove pool h0 with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a stolen element");
  Alcotest.(check int) "one steal" 1 (Mc_pool.steals pool);
  Alcotest.(check int) "conserved" 7 (Mc_pool.size pool)

let test_remove_confirms_empty kind () =
  let pool : int Mc_pool.t = Mc_pool.create ~kind ~segments:3 () in
  let h = Mc_pool.register pool in
  Alcotest.(check bool) "empty pool" true (Mc_pool.remove pool h = None);
  Mc_pool.add pool h 7;
  Alcotest.(check (option int)) "element back" (Some 7) (Mc_pool.remove pool h)

let test_try_remove_nonblocking kind () =
  let pool : int Mc_pool.t = Mc_pool.create ~kind ~segments:4 () in
  let h = Mc_pool.register pool in
  Alcotest.(check (option int)) "nothing" None (Mc_pool.try_remove pool h)

(* --- Multi-domain stress --- *)

let test_conservation_under_domains kind () =
  (* 4 domains, each adds [per] elements and removes [per] elements; at the
     end the pool must be exactly empty and every element consumed once. *)
  let domains = 4 and per = 2_000 in
  let pool = Mc_pool.create ~kind ~segments:domains () in
  let consumed = Array.make domains 0 in
  let spawn i =
    Domain.spawn (fun () ->
        let h = Mc_pool.register_at pool i in
        for k = 1 to per do
          Mc_pool.add pool h ((i * per) + k);
          if k land 1 = 0 then begin
            (* Interleave removes to force stealing traffic. *)
            match Mc_pool.remove pool h with
            | Some _ -> consumed.(i) <- consumed.(i) + 1
            | None -> ()
          end
        done;
        let rec drain () =
          match Mc_pool.remove pool h with
          | Some _ ->
            consumed.(i) <- consumed.(i) + 1;
            drain ()
          | None -> ()
        in
        drain ();
        Mc_pool.deregister pool h)
  in
  let ds = List.init domains spawn in
  List.iter Domain.join ds;
  Alcotest.(check int) "pool drained" 0 (Mc_pool.size pool);
  Alcotest.(check int) "every element consumed exactly once" (domains * per)
    (Array.fold_left ( + ) 0 consumed)

let test_producer_consumer_domains kind () =
  (* 2 producers push, 2 consumers pull; totals must match. *)
  let per = 5_000 in
  let pool = Mc_pool.create ~kind ~segments:4 () in
  let eaten = Atomic.make 0 in
  (* Register every worker before any domain starts, so a fast consumer
     cannot observe "all registered workers searching" while a producer is
     still booting. *)
  let handles = Array.init 4 (Mc_pool.register_at pool) in
  let producers =
    List.init 2 (fun i ->
        Domain.spawn (fun () ->
            let h = handles.(i) in
            for k = 1 to per do
              Mc_pool.add pool h k
            done;
            Mc_pool.deregister pool h))
  in
  let consumers =
    List.init 2 (fun i ->
        Domain.spawn (fun () ->
            let h = handles.(2 + i) in
            let rec eat () =
              match Mc_pool.remove pool h with
              | Some _ ->
                Atomic.incr eaten;
                eat ()
              | None -> ()
            in
            eat ();
            Mc_pool.deregister pool h))
  in
  List.iter Domain.join producers;
  List.iter Domain.join consumers;
  (* Consumers exit only when all *registered* workers are searching; the
     producers never search, so consumers drain everything the producers
     made before both become the only active parties. Whatever remains
     unconsumed must still be in the pool. *)
  Alcotest.(check int) "conservation" (2 * per) (Atomic.get eaten + Mc_pool.size pool);
  Alcotest.(check bool) "stealing happened" true (Mc_pool.steals pool > 0)

let test_work_generating_workload kind () =
  (* Task-graph shape: each element may spawn children; all domains run
     until global quiescence, which [remove] detects as None. *)
  let pool = Mc_pool.create ~kind ~segments:4 () in
  let produced = Atomic.make 0 in
  let processed = Atomic.make 0 in
  let seed_handle = Mc_pool.register_at pool 0 in
  Mc_pool.add pool seed_handle 12;
  Atomic.incr produced;
  let worker i =
    Domain.spawn (fun () ->
        let h = if i = 0 then seed_handle else Mc_pool.register_at pool i in
        let rec go () =
          match Mc_pool.remove pool h with
          | Some depth ->
            Atomic.incr processed;
            if depth > 0 then begin
              (* Two children per task: a small binary task tree. *)
              Mc_pool.add pool h (depth - 1);
              Mc_pool.add pool h (depth - 1);
              Atomic.incr produced;
              Atomic.incr produced
            end;
            go ()
          | None -> ()
        in
        go ();
        Mc_pool.deregister pool h)
  in
  let ds = List.init 4 worker in
  List.iter Domain.join ds;
  Alcotest.(check int) "all tasks processed" (Atomic.get produced) (Atomic.get processed);
  Alcotest.(check int) "binary tree of depth 12" ((2 lsl 12) - 1) (Atomic.get processed);
  Alcotest.(check int) "pool empty" 0 (Mc_pool.size pool)

let per_kind name f = List.map (fun (kn, k) -> Alcotest.test_case (name ^ " (" ^ kn ^ ")") `Quick (f k)) kinds

let main_suites =
  [
    ( "mcpool",
      [
        Alcotest.test_case "create invalid" `Quick test_create_invalid;
        Alcotest.test_case "register slots" `Quick test_register_slots;
        Alcotest.test_case "register_at" `Quick test_register_at;
        Alcotest.test_case "local roundtrip" `Quick test_local_roundtrip;
      ]
      @ per_kind "steal across slots" test_steal_across_slots
      @ per_kind "remove confirms empty" test_remove_confirms_empty
      @ per_kind "try_remove nonblocking" test_try_remove_nonblocking
      @ per_kind "conservation under domains" test_conservation_under_domains
      @ per_kind "producer/consumer domains" test_producer_consumer_domains
      @ per_kind "work-generating workload" test_work_generating_workload );
  ]

(* --- Bounded multicore pools --- *)

let test_bounded_spill_and_reject () =
  let pool = Mc_pool.create ~capacity:2 ~segments:2 () in
  let h0 = Mc_pool.register_at pool 0 in
  Alcotest.(check bool) "1" true (Mc_pool.try_add pool h0 1);
  Alcotest.(check bool) "2" true (Mc_pool.try_add pool h0 2);
  (* Own segment full: spills to slot 1. *)
  Alcotest.(check bool) "3 spills" true (Mc_pool.try_add pool h0 3);
  Alcotest.(check bool) "4 spills" true (Mc_pool.try_add pool h0 4);
  Alcotest.(check bool) "5 rejected" false (Mc_pool.try_add pool h0 5);
  Alcotest.(check int) "size capped" 4 (Mc_pool.size pool);
  (match Mc_pool.add pool h0 6 with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "expected Failure");
  Mc_pool.deregister pool h0

let test_bounded_capacity_validated () =
  Alcotest.check_raises "capacity" (Invalid_argument "Mc_segment.make: capacity must be positive")
    (fun () -> ignore (Mc_pool.create ~capacity:0 ~segments:2 () : int Mc_pool.t))

let test_bounded_steal_capped () =
  let pool = Mc_pool.create ~capacity:4 ~segments:2 () in
  let h0 = Mc_pool.register_at pool 0 in
  let h1 = Mc_pool.register_at pool 1 in
  for i = 1 to 4 do
    Mc_pool.add pool h1 i
  done;
  (* Thief empty, spare 4: a steal of ceil(4/2)=2 fits within spare+1. *)
  Alcotest.(check bool) "steals" true (Mc_pool.try_remove pool h0 <> None);
  Alcotest.(check int) "conserved" 3 (Mc_pool.size pool);
  Mc_pool.deregister pool h0;
  Mc_pool.deregister pool h1

let suites =
  main_suites
  @ [
    ( "mcpool.bounded",
      [
        Alcotest.test_case "spill and reject" `Quick test_bounded_spill_and_reject;
        Alcotest.test_case "capacity validated" `Quick test_bounded_capacity_validated;
        Alcotest.test_case "steal capped" `Quick test_bounded_steal_capped;
      ] );
  ]
