(* Tests for the multicore (OCaml 5 domains) concurrent pool. *)

open Cpool_mc

let kinds =
  [
    ("linear", Mc_pool.Linear);
    ("random", Mc_pool.Random);
    ("tree", Mc_pool.Tree);
    ("hinted", Mc_pool.Hinted);
  ]

(* --- Single-domain semantics --- *)

let test_create_invalid () =
  Alcotest.check_raises "segments"
    (Invalid_argument "Mc_pool.of_config: segments must be positive")
    (fun () -> ignore (Mc_pool.of_config { Mc_pool.Config.default with segments = 0 } : unit Mc_pool.t))

let test_register_slots () =
  let pool : int Mc_pool.t = Mc_pool.of_config { Mc_pool.Config.default with segments = 2 } in
  let h0 = Mc_pool.register pool in
  let h1 = Mc_pool.register pool in
  Alcotest.(check int) "first slot" 0 (Mc_pool.slot h0);
  Alcotest.(check int) "second slot" 1 (Mc_pool.slot h1);
  (match Mc_pool.register pool with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected registration failure");
  Alcotest.(check int) "segments" 2 (Mc_pool.segments pool)

let test_register_at () =
  let pool : int Mc_pool.t = Mc_pool.of_config { Mc_pool.Config.default with segments = 3 } in
  let h2 = Mc_pool.register_at pool 2 in
  Alcotest.(check int) "explicit slot" 2 (Mc_pool.slot h2);
  Alcotest.check_raises "reclaim" (Invalid_argument "Mc_pool.register_at: slot already claimed")
    (fun () -> ignore (Mc_pool.register_at pool 2));
  (* register skips the claimed slot *)
  Alcotest.(check int) "register skips" 0 (Mc_pool.slot (Mc_pool.register pool))

let test_local_roundtrip () =
  let pool = Mc_pool.of_config { Mc_pool.Config.default with segments = 2 } in
  let h = Mc_pool.register pool in
  Mc_pool.add pool h "a";
  Mc_pool.add pool h "b";
  Alcotest.(check int) "size" 2 (Mc_pool.size pool);
  Alcotest.(check (option string)) "fifo" (Some "a") (Mc_pool.try_remove_local pool h);
  Alcotest.(check (option string)) "next" (Some "b") (Mc_pool.try_remove_local pool h);
  Alcotest.(check (option string)) "empty" None (Mc_pool.try_remove_local pool h)

let test_steal_across_slots kind () =
  let pool = Mc_pool.of_config { Mc_pool.Config.default with kind; segments = 4 } in
  let h0 = Mc_pool.register_at pool 0 in
  let h2 = Mc_pool.register_at pool 2 in
  for i = 1 to 8 do
    Mc_pool.add pool h2 i
  done;
  (match Mc_pool.try_remove pool h0 with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a stolen element");
  Alcotest.(check int) "one steal" 1 (Mc_pool.steals pool);
  Alcotest.(check int) "conserved" 7 (Mc_pool.size pool)

let test_remove_confirms_empty kind () =
  let pool : int Mc_pool.t = Mc_pool.of_config { Mc_pool.Config.default with kind; segments = 3 } in
  let h = Mc_pool.register pool in
  Alcotest.(check bool) "empty pool" true (Mc_pool.remove pool h = None);
  Mc_pool.add pool h 7;
  Alcotest.(check (option int)) "element back" (Some 7) (Mc_pool.remove pool h)

let test_try_remove_nonblocking kind () =
  let pool : int Mc_pool.t = Mc_pool.of_config { Mc_pool.Config.default with kind; segments = 4 } in
  let h = Mc_pool.register pool in
  Alcotest.(check (option int)) "nothing" None (Mc_pool.try_remove pool h)

(* --- Multi-domain stress --- *)

let test_conservation_under_domains ?(fast_path = true) kind () =
  (* 4 domains, each adds [per] elements and removes [per] elements; at the
     end the pool must be exactly empty and every element consumed once. *)
  let domains = 4 and per = 2_000 in
  let pool =
    Mc_pool.of_config { Mc_pool.Config.default with kind; fast_path; segments = domains }
  in
  let consumed = Array.make domains 0 in
  let spawn i =
    Domain.spawn (fun () ->
        let h = Mc_pool.register_at pool i in
        for k = 1 to per do
          Mc_pool.add pool h ((i * per) + k);
          if k land 1 = 0 then begin
            (* Interleave removes to force stealing traffic. *)
            match Mc_pool.remove pool h with
            | Some _ -> consumed.(i) <- consumed.(i) + 1
            | None -> ()
          end
        done;
        let rec drain () =
          match Mc_pool.remove pool h with
          | Some _ ->
            consumed.(i) <- consumed.(i) + 1;
            drain ()
          | None -> ()
        in
        drain ();
        Mc_pool.deregister pool h)
  in
  let ds = List.init domains spawn in
  List.iter Domain.join ds;
  Alcotest.(check int) "pool drained" 0 (Mc_pool.size pool);
  Alcotest.(check int) "every element consumed exactly once" (domains * per)
    (Array.fold_left ( + ) 0 consumed)

let test_producer_consumer_domains kind () =
  (* 2 producers push, 2 consumers pull; totals must match. *)
  let per = 5_000 in
  let pool = Mc_pool.of_config { Mc_pool.Config.default with kind; segments = 4 } in
  let eaten = Atomic.make 0 in
  (* Register every worker before any domain starts, so a fast consumer
     cannot observe "all registered workers searching" while a producer is
     still booting. *)
  let handles = Array.init 4 (Mc_pool.register_at pool) in
  let producers =
    List.init 2 (fun i ->
        Domain.spawn (fun () ->
            let h = handles.(i) in
            for k = 1 to per do
              Mc_pool.add pool h k
            done;
            Mc_pool.deregister pool h))
  in
  let consumers =
    List.init 2 (fun i ->
        Domain.spawn (fun () ->
            let h = handles.(2 + i) in
            let rec eat () =
              match Mc_pool.remove pool h with
              | Some _ ->
                Atomic.incr eaten;
                eat ()
              | None -> ()
            in
            eat ();
            Mc_pool.deregister pool h))
  in
  List.iter Domain.join producers;
  List.iter Domain.join consumers;
  (* Consumers exit only when all *registered* workers are searching; the
     producers never search, so consumers drain everything the producers
     made before both become the only active parties. Whatever remains
     unconsumed must still be in the pool. *)
  Alcotest.(check int) "conservation" (2 * per) (Atomic.get eaten + Mc_pool.size pool);
  Alcotest.(check bool) "stealing happened" true (Mc_pool.steals pool > 0)

let test_work_generating_workload kind () =
  (* Task-graph shape: each element may spawn children; all domains run
     until global quiescence, which [remove] detects as None. *)
  let pool = Mc_pool.of_config { Mc_pool.Config.default with kind; segments = 4 } in
  let produced = Atomic.make 0 in
  let processed = Atomic.make 0 in
  let seed_handle = Mc_pool.register_at pool 0 in
  Mc_pool.add pool seed_handle 12;
  Atomic.incr produced;
  let worker i =
    Domain.spawn (fun () ->
        let h = if i = 0 then seed_handle else Mc_pool.register_at pool i in
        let rec go () =
          match Mc_pool.remove pool h with
          | Some depth ->
            Atomic.incr processed;
            if depth > 0 then begin
              (* Two children per task: a small binary task tree. *)
              Mc_pool.add pool h (depth - 1);
              Mc_pool.add pool h (depth - 1);
              Atomic.incr produced;
              Atomic.incr produced
            end;
            go ()
          | None -> ()
        in
        go ();
        Mc_pool.deregister pool h)
  in
  let ds = List.init 4 worker in
  List.iter Domain.join ds;
  Alcotest.(check int) "all tasks processed" (Atomic.get produced) (Atomic.get processed);
  Alcotest.(check int) "binary tree of depth 12" ((2 lsl 12) - 1) (Atomic.get processed);
  Alcotest.(check int) "pool empty" 0 (Mc_pool.size pool)

(* --- Lifecycle: slot release, churn, deregister-during-drain --- *)

let test_deregister_releases_slot () =
  let pool : int Mc_pool.t = Mc_pool.of_config { Mc_pool.Config.default with segments = 2 } in
  let h0 = Mc_pool.register pool in
  let _h1 = Mc_pool.register pool in
  Alcotest.(check int) "both claimed" 2 (Mc_pool.claimed_count pool);
  Mc_pool.deregister pool h0;
  Alcotest.(check int) "slot released" 1 (Mc_pool.claimed_count pool);
  let h0' = Mc_pool.register pool in
  Alcotest.(check int) "freed slot reused" 0 (Mc_pool.slot h0')

let test_double_deregister_rejected () =
  let pool : int Mc_pool.t = Mc_pool.of_config { Mc_pool.Config.default with segments = 1 } in
  let h = Mc_pool.register pool in
  Mc_pool.deregister pool h;
  Alcotest.check_raises "double deregister"
    (Invalid_argument "Mc_pool.deregister: handle already deregistered") (fun () ->
      Mc_pool.deregister pool h)

let test_register_deregister_churn () =
  (* Regression for the slot leak: the seed version never cleared
     [claimed] on deregister, so the second cycle here already failed with
     "all slots claimed". *)
  let pool : int Mc_pool.t = Mc_pool.of_config { Mc_pool.Config.default with segments = 2 } in
  let keeper = Mc_pool.register pool in
  for i = 1 to 1_000 do
    let h = Mc_pool.register pool in
    Mc_pool.add pool h i;
    (match Mc_pool.try_remove pool h with
    | Some _ -> ()
    | None -> Alcotest.fail "churn cycle lost its element");
    Mc_pool.deregister pool h
  done;
  Alcotest.(check int) "only the keeper remains" 1 (Mc_pool.claimed_count pool);
  Alcotest.(check int) "registered count back to one" 1 (Mc_pool.registered pool);
  Alcotest.(check int) "pool empty" 0 (Mc_pool.size pool);
  Mc_pool.deregister pool keeper;
  Alcotest.(check int) "all slots free" 0 (Mc_pool.claimed_count pool)

let test_concurrent_churn () =
  (* Four domains cycle registration concurrently on a shared pool; the
     registration mutex must keep claims exact and leak-free. *)
  let cycles = 250 in
  let pool : int Mc_pool.t = Mc_pool.of_config { Mc_pool.Config.default with segments = 8 } in
  let ds =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to cycles do
              let h = Mc_pool.register pool in
              Mc_pool.add pool h ((d * cycles) + i);
              (match Mc_pool.try_remove pool h with
              | Some _ -> ()
              | None -> failwith "lost element under churn");
              Mc_pool.deregister pool h
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "no claimed slots leak" 0 (Mc_pool.claimed_count pool);
  Alcotest.(check int) "no registered workers leak" 0 (Mc_pool.registered pool);
  Alcotest.(check bool) "segments consistent" true (Mc_pool.check_segments pool)

let test_deregister_while_draining kind () =
  (* The termination protocol under deregistration: two drainers block in
     [remove] while a third registered worker sits idle — searching (2) <
     registered (3), so neither drainer may conclude the pool empty. Once
     the idle worker deregisters, searching >= registered and both must
     return None. A regression here either hangs (None never concluded) or
     loses elements (None concluded too early). *)
  let elements = 500 in
  let pool : int Mc_pool.t = Mc_pool.of_config { Mc_pool.Config.default with kind; segments = 4 } in
  let producer = Mc_pool.register_at pool 0 in
  for i = 1 to elements do
    Mc_pool.add pool producer i
  done;
  let eaten = Atomic.make 0 in
  let drainers =
    List.init 2 (fun i ->
        Domain.spawn (fun () ->
            let h = Mc_pool.register_at pool (1 + i) in
            let rec eat () =
              match Mc_pool.remove pool h with
              | Some _ ->
                Atomic.incr eaten;
                eat ()
              | None -> ()
            in
            eat ();
            Mc_pool.deregister pool h))
  in
  (* Let the drainers reach the spin loop with a drained pool, then retire
     the idle producer mid-drain. *)
  while Mc_pool.size pool > 0 do
    Domain.cpu_relax ()
  done;
  Mc_pool.deregister pool producer;
  List.iter Domain.join drainers;
  Alcotest.(check int) "every element consumed exactly once" elements (Atomic.get eaten);
  Alcotest.(check int) "no one left registered" 0 (Mc_pool.registered pool);
  Alcotest.(check int) "no claimed slots leak" 0 (Mc_pool.claimed_count pool)

(* --- Telemetry --- *)

let test_stats_counters () =
  let pool : int Mc_pool.t = Mc_pool.of_config { Mc_pool.Config.default with segments = 2 } in
  let h0 = Mc_pool.register_at pool 0 in
  let h1 = Mc_pool.register_at pool 1 in
  for i = 1 to 4 do
    Mc_pool.add pool h0 i
  done;
  (match Mc_pool.try_remove_local pool h0 with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a local remove");
  (* h1 is empty: this remove must steal 2 of h0's remaining 3 elements. *)
  (match Mc_pool.try_remove pool h1 with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a steal");
  let c0 = Mc_stats.counters (Mc_pool.stats_of_handle h0) in
  let c1 = Mc_stats.counters (Mc_pool.stats_of_handle h1) in
  Alcotest.(check int) "h0 adds" 4 (Cpool_metrics.Counters.get c0 "adds");
  Alcotest.(check int) "h0 local removes" 1 (Cpool_metrics.Counters.get c0 "local removes");
  Alcotest.(check int) "h1 made no adds" 0 (Cpool_metrics.Counters.get c1 "adds");
  Alcotest.(check int) "h1 steals" 1 (Cpool_metrics.Counters.get c1 "steals");
  Alcotest.(check int) "h1 stole two elements" 2
    (Cpool_metrics.Counters.get c1 "elements stolen");
  let segs = Mc_stats.segments_per_steal (Mc_pool.stats_of_handle h1) in
  Alcotest.(check int) "one steal in the distribution" 1 (Cpool_metrics.Sample.n segs);
  (* The linear pass examined h1's own (empty) segment, then stole from
     segment 0: two segments examined for this steal. *)
  Alcotest.(check (float 1e-9)) "segments examined for it" 2.0 (Cpool_metrics.Sample.mean segs);
  Alcotest.(check (float 1e-9)) "mean elements per steal" 2.0
    (Mc_stats.mean_elements_per_steal (Mc_pool.stats_of_handle h1))

let test_stats_survive_churn () =
  (* Pool-level stats merge every handle ever issued, so totals are
     conserved across register/deregister churn. *)
  let pool : int Mc_pool.t = Mc_pool.of_config { Mc_pool.Config.default with segments = 2 } in
  for i = 1 to 10 do
    let h = Mc_pool.register pool in
    Mc_pool.add pool h i;
    ignore (Mc_pool.try_remove pool h : int option);
    Mc_pool.deregister pool h
  done;
  let merged = Mc_pool.stats pool in
  let c = Mc_stats.counters merged in
  Alcotest.(check int) "adds accumulated" 10 (Cpool_metrics.Counters.get c "adds");
  Alcotest.(check int) "removes accumulated" 10 (Mc_stats.removes merged)

let test_stats_render () =
  let pool : int Mc_pool.t = Mc_pool.of_config { Mc_pool.Config.default with segments = 1 } in
  let h = Mc_pool.register pool in
  Mc_pool.add pool h 1;
  ignore (Mc_pool.try_remove_local pool h : int option);
  let table =
    Mc_stats.render_table [ ("d0", Mc_pool.stats_of_handle h); ("d1", Mc_stats.create ()) ]
  in
  Alcotest.(check bool) "has per-worker row" true
    (String.length table > 0 && String.sub table 0 6 = "worker");
  Alcotest.(check bool) "has total row" true
    (List.exists
       (fun l -> String.length l >= 5 && String.sub l 0 5 = "TOTAL")
       (String.split_on_char '\n' table))

(* --- The stress harness itself (smoke) --- *)

let test_stress_harness kind () =
  let cfg =
    {
      Mc_stress.default with
      Mc_stress.domains = 4;
      kind;
      capacity = Some 16;
      workload =
        { Cpool_intf.Workload.default with duration_s = 0.05; initial = 8 };
    }
  in
  let r = Mc_stress.run cfg in
  Alcotest.(check (list string)) "no invariant violations" [] r.Mc_stress.violations;
  Alcotest.(check bool) "did some work" true (r.Mc_stress.ops > 0);
  Alcotest.(check bool) "renders" true (String.length (Mc_stress.render r) > 0)

(* --- Hinted hand-off --- *)

let test_kind_round_trip () =
  List.iter
    (fun k ->
      let s = Cpool_intf.to_string k in
      match Cpool_intf.of_string s with
      | Ok k' -> Alcotest.(check bool) (s ^ " round-trips") true (k = k')
      | Error e -> Alcotest.fail e)
    Cpool_intf.all;
  (match Mc_pool.kind_of_string "HINTED" with
  | Ok Mc_pool.Hinted -> ()
  | _ -> Alcotest.fail "of_string must be case-insensitive");
  match Mc_pool.kind_of_string "bogus" with
  | Ok _ -> Alcotest.fail "expected an error for an unknown kind"
  | Error msg ->
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
      at 0
    in
    let mentions_valid = contains msg "valid kinds" in
    Alcotest.(check bool) "error lists the valid kinds" true mentions_valid

let test_hinted_remove_none_on_quiescence () =
  (* A lone registered searcher on an empty hinted pool must abort with
     None (not park forever), and the abort must leave the hint board fully
     retracted: published = claimed + expired. *)
  let pool : int Mc_pool.t = Mc_pool.of_config { Mc_pool.Config.default with kind = Mc_pool.Hinted; segments = 4 } in
  let h = Mc_pool.register pool in
  Alcotest.(check (option int)) "empty pool" None (Mc_pool.remove pool h);
  Mc_pool.add pool h 7;
  Alcotest.(check (option int)) "element back" (Some 7) (Mc_pool.remove pool h);
  Alcotest.(check (option int)) "empty again" None (Mc_pool.remove pool h);
  let s = Mc_pool.stats pool in
  Alcotest.(check int) "board settled: published = claimed + expired"
    (Mc_stats.hints_published s)
    (Mc_stats.hints_claimed s + Mc_stats.hints_expired s);
  Mc_pool.deregister pool h

let test_hinted_quiescence_under_domains () =
  (* Two domains both hunting an empty pool: each must see the other as
     "searching empty" (parked counts) and abort, rather than deadlock. *)
  let pool : int Mc_pool.t = Mc_pool.of_config { Mc_pool.Config.default with kind = Mc_pool.Hinted; segments = 2 } in
  let handles = Array.init 2 (Mc_pool.register_at pool) in
  let ds =
    List.init 2 (fun i ->
        Domain.spawn (fun () ->
            let r = Mc_pool.remove pool handles.(i) in
            Mc_pool.deregister pool handles.(i);
            r))
  in
  List.iter
    (fun d -> Alcotest.(check (option int)) "abort on empty" None (Domain.join d))
    ds

let test_hinted_parked_searcher_woken () =
  (* The tentpole scenario: a consumer parks on the hint board, a remote
     producer's add claims the hint and deposits straight into the
     consumer's segment. Repeat enough rounds that at least one add lands
     while the searcher is parked. *)
  let rounds = 20 in
  let pool : int Mc_pool.t = Mc_pool.of_config { Mc_pool.Config.default with kind = Mc_pool.Hinted; segments = 2 } in
  let h0 = Mc_pool.register_at pool 0 in
  let h1 = Mc_pool.register_at pool 1 in
  let got = Atomic.make 0 in
  let consumer =
    Domain.spawn (fun () ->
        for _ = 1 to rounds do
          match Mc_pool.remove pool h0 with
          | Some _ -> Atomic.incr got
          | None -> ()
        done;
        Mc_pool.deregister pool h0)
  in
  for k = 1 to rounds do
    (* Give the searcher time to publish a hint before adding, so the add
       exercises the claim-and-deliver path; the bound keeps the test from
       hanging if the searcher is between publications. *)
    let rec await i =
      if
        i < 2_000
        && Atomic.get got < k
        && Mc_stats.hints_published (Mc_pool.stats pool) < k
      then begin
        Unix.sleepf 1e-4;
        await (i + 1)
      end
    in
    await 0;
    Mc_pool.add pool h1 k
  done;
  Domain.join consumer;
  Alcotest.(check int) "every remove satisfied" rounds (Atomic.get got);
  let s = Mc_pool.stats pool in
  Alcotest.(check bool) "hints were published" true (Mc_stats.hints_published s >= 1);
  Alcotest.(check bool) "at least one hand-off delivered" true
    (Mc_stats.hints_delivered s >= 1);
  Alcotest.(check bool) "delivered <= claimed" true
    (Mc_stats.hints_delivered s <= Mc_stats.hints_claimed s);
  Mc_pool.deregister pool h1

let test_hinted_sparse_stress_cell () =
  (* A sparse mix (35% adds) keeps searchers hungry, so the hint board is
     exercised under churn; the harness checks conservation, capacity and
     the hint accounting identities after the run. *)
  let cfg =
    {
      Mc_stress.default with
      Mc_stress.domains = 4;
      kind = Mc_pool.Hinted;
      workload =
        {
          Cpool_intf.Workload.default with
          mix = 0.35;
          duration_s = 0.1;
          initial = 8;
        };
    }
  in
  let r = Mc_stress.run cfg in
  Alcotest.(check (list string)) "no invariant violations" [] r.Mc_stress.violations;
  Alcotest.(check bool) "did some work" true (r.Mc_stress.ops > 0)

let per_kind name f = List.map (fun (kn, k) -> Alcotest.test_case (name ^ " (" ^ kn ^ ")") `Quick (f k)) kinds

let main_suites =
  [
    ( "mcpool",
      [
        Alcotest.test_case "kind round-trip" `Quick test_kind_round_trip;
        Alcotest.test_case "hinted: None on quiescence" `Quick
          test_hinted_remove_none_on_quiescence;
        Alcotest.test_case "hinted: quiescence under domains" `Quick
          test_hinted_quiescence_under_domains;
        Alcotest.test_case "hinted: parked searcher woken by remote add" `Quick
          test_hinted_parked_searcher_woken;
        Alcotest.test_case "hinted: sparse stress cell" `Quick
          test_hinted_sparse_stress_cell;
        Alcotest.test_case "create invalid" `Quick test_create_invalid;
        Alcotest.test_case "register slots" `Quick test_register_slots;
        Alcotest.test_case "register_at" `Quick test_register_at;
        Alcotest.test_case "local roundtrip" `Quick test_local_roundtrip;
      ]
      @ per_kind "steal across slots" test_steal_across_slots
      @ per_kind "remove confirms empty" test_remove_confirms_empty
      @ per_kind "try_remove nonblocking" test_try_remove_nonblocking
      @ per_kind "conservation under domains" test_conservation_under_domains
      @ per_kind "producer/consumer domains" test_producer_consumer_domains
      @ per_kind "work-generating workload" test_work_generating_workload );
  ]

(* --- Bounded multicore pools --- *)

let test_bounded_spill_and_reject () =
  let pool = Mc_pool.of_config { Mc_pool.Config.default with capacity = Some 2; segments = 2 } in
  let h0 = Mc_pool.register_at pool 0 in
  Alcotest.(check bool) "1" true (Mc_pool.try_add pool h0 1);
  Alcotest.(check bool) "2" true (Mc_pool.try_add pool h0 2);
  (* Own segment full: spills to slot 1. *)
  Alcotest.(check bool) "3 spills" true (Mc_pool.try_add pool h0 3);
  Alcotest.(check bool) "4 spills" true (Mc_pool.try_add pool h0 4);
  Alcotest.(check bool) "5 rejected" false (Mc_pool.try_add pool h0 5);
  Alcotest.(check int) "size capped" 4 (Mc_pool.size pool);
  (match Mc_pool.add pool h0 6 with
  | exception Failure _ -> ()
  | () -> Alcotest.fail "expected Failure");
  Mc_pool.deregister pool h0

let test_bounded_capacity_validated () =
  Alcotest.check_raises "capacity"
    (Invalid_argument "Mc_pool.of_config: capacity must be positive")
    (fun () -> ignore (Mc_pool.of_config { Mc_pool.Config.default with capacity = Some 0; segments = 2 } : int Mc_pool.t))

let test_bounded_steal_capped () =
  let pool = Mc_pool.of_config { Mc_pool.Config.default with capacity = Some 4; segments = 2 } in
  let h0 = Mc_pool.register_at pool 0 in
  let h1 = Mc_pool.register_at pool 1 in
  for i = 1 to 4 do
    Mc_pool.add pool h1 i
  done;
  (* Thief empty, spare 4: a steal of ceil(4/2)=2 fits the reservation. *)
  Alcotest.(check bool) "steals" true (Mc_pool.try_remove pool h0 <> None);
  Alcotest.(check int) "conserved" 3 (Mc_pool.size pool);
  Alcotest.(check bool) "segments consistent" true (Mc_pool.check_segments pool);
  Mc_pool.deregister pool h0;
  Mc_pool.deregister pool h1

let test_bounded_capacity_never_exceeded kind () =
  (* Regression for the capacity race: steals used to size their take from
     an unlocked [spare] read and then deposit unconditionally, so racing
     thieves could push a segment past its bound. A watcher domain polls
     every segment's occupied capacity throughout an add-heavy
     multi-domain run: the bound must hold at every instant. *)
  let domains = 4 and capacity = 8 and per = 10_000 in
  let pool =
    Mc_pool.of_config
      { Mc_pool.Config.default with kind; capacity = Some capacity; segments = domains }
  in
  let handles = Array.init domains (Mc_pool.register_at pool) in
  let stop = Atomic.make false in
  let over_capacity = Atomic.make 0 in
  let watcher =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          Array.iter
            (fun size -> if size > capacity then Atomic.incr over_capacity)
            (Mc_pool.segment_sizes pool);
          Domain.cpu_relax ()
        done)
  in
  let added = Atomic.make 0 and removed = Atomic.make 0 in
  let ds =
    List.init domains (fun i ->
        Domain.spawn (fun () ->
            let h = handles.(i) in
            for k = 1 to per do
              (* Add-heavy (2 adds : 1 remove) keeps segments pinned at the
                 bound, maximising spills and capped steals. *)
              if k mod 3 < 2 then begin
                if Mc_pool.try_add pool h k then Atomic.incr added
              end
              else
                match Mc_pool.try_remove pool h with
                | Some _ -> Atomic.incr removed
                | None -> ()
            done;
            let rec drain () =
              match Mc_pool.remove pool h with
              | Some _ ->
                Atomic.incr removed;
                drain ()
              | None -> ()
            in
            drain ();
            Mc_pool.deregister pool h))
  in
  List.iter Domain.join ds;
  Atomic.set stop true;
  Domain.join watcher;
  Alcotest.(check int) "capacity never exceeded" 0 (Atomic.get over_capacity);
  Alcotest.(check int) "conservation" (Atomic.get added) (Atomic.get removed);
  Alcotest.(check int) "drained" 0 (Mc_pool.size pool);
  Alcotest.(check bool) "segments consistent" true (Mc_pool.check_segments pool)

(* --- Segment-level capacity primitives --- *)

let test_segment_deposit_overflow () =
  let s : int Mc_segment.t = Mc_segment.make ~capacity:3 ~id:0 () in
  Alcotest.(check bool) "fill one" true (Mc_segment.try_add s 1);
  Alcotest.(check (list int)) "rejects past the bound" [ 12 ]
    (Mc_segment.deposit s [ 10; 11; 12 ]);
  Alcotest.(check int) "filled to capacity" 3 (Mc_segment.size s);
  Alcotest.(check bool) "consistent" true (Mc_segment.invariant_ok s);
  let u : int Mc_segment.t = Mc_segment.make ~id:1 () in
  Alcotest.(check (list int)) "unbounded never rejects" []
    (Mc_segment.deposit u [ 1; 2; 3 ])

let test_segment_reserve_refill () =
  let s : int Mc_segment.t = Mc_segment.make ~capacity:4 ~id:0 () in
  Alcotest.(check bool) "one stored" true (Mc_segment.try_add s 1);
  Alcotest.(check int) "reservation capped by spare" 3 (Mc_segment.reserve s 10);
  Alcotest.(check int) "reservation occupies capacity" 4 (Mc_segment.size s);
  Alcotest.(check bool) "adds see no room" false (Mc_segment.try_add s 2);
  Mc_segment.refill s ~reserved:3 [ 7; 8 ];
  Alcotest.(check int) "unused reservation released" 3 (Mc_segment.size s);
  Alcotest.(check bool) "consistent after refill" true (Mc_segment.invariant_ok s);
  Alcotest.check_raises "overfull refill"
    (Invalid_argument "Mc_segment.refill: more elements than reserved") (fun () ->
      Mc_segment.refill s ~reserved:1 [ 1; 2 ]);
  Alcotest.check_raises "negative reservation"
    (Invalid_argument "Mc_segment.reserve: negative reservation") (fun () ->
      ignore (Mc_segment.reserve s (-1)))

(* --- Ring protocol and the fast/locked path split --- *)

let test_segment_spill_add () =
  let s : int Mc_segment.t = Mc_segment.make ~capacity:3 ~id:0 () in
  Alcotest.(check bool) "owner add" true (Mc_segment.try_add s 1);
  Alcotest.(check bool) "spill 1" true (Mc_segment.spill_add s 2);
  Alcotest.(check bool) "spill 2" true (Mc_segment.spill_add s 3);
  Alcotest.(check bool) "spill past bound rejected" false (Mc_segment.spill_add s 4);
  Alcotest.(check int) "size" 3 (Mc_segment.size s);
  Alcotest.(check bool) "consistent" true (Mc_segment.invariant_ok s);
  (* All three come back out through the owner (ring first, then inbox). *)
  let rec drain acc =
    match Mc_segment.try_remove s with Some x -> drain (x :: acc) | None -> acc
  in
  Alcotest.(check (list int)) "all retrieved" [ 1; 2; 3 ] (List.sort compare (drain []));
  let stats = Mc_segment.stats s in
  Alcotest.(check int) "inbox adds counted" 2
    (Cpool_metrics.Counters.get (Mc_stats.counters stats) "inbox adds")

let test_segment_ring_wrap_churn () =
  (* Push/pop churn far past the initial ring size: the cursors are
     monotone, so the ring indices wrap many times; every element must
     come back exactly once, interleaved with steals. *)
  let s : int Mc_segment.t = Mc_segment.make ~id:0 () in
  let seen = Hashtbl.create 64 in
  let next = ref 0 in
  let out = ref 0 in
  for round = 1 to 200 do
    for _ = 1 to 7 do
      incr next;
      Mc_segment.add s !next
    done;
    (match Mc_segment.steal_half ~max_take:2 s with
    | Cpool.Steal.Nothing -> ()
    | Cpool.Steal.Single x ->
      incr out;
      Hashtbl.replace seen x ()
    | Cpool.Steal.Batch (x, rest) ->
      List.iter
        (fun y ->
          incr out;
          Hashtbl.replace seen y ())
        (x :: rest));
    let pops = if round mod 3 = 0 then 6 else 4 in
    for _ = 1 to pops do
      match Mc_segment.try_remove s with
      | Some x ->
        incr out;
        Hashtbl.replace seen x ()
      | None -> ()
    done
  done;
  let rec drain () =
    match Mc_segment.try_remove s with
    | Some x ->
      incr out;
      Hashtbl.replace seen x ();
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "every element out exactly once" !next !out;
  Alcotest.(check int) "no duplicates" !next (Hashtbl.length seen);
  Alcotest.(check bool) "consistent" true (Mc_segment.invariant_ok s)

let test_segment_fast_path_stats () =
  let s : int Mc_segment.t = Mc_segment.make ~id:0 () in
  for i = 1 to 8 do
    Mc_segment.add s i
  done;
  for _ = 1 to 8 do
    ignore (Mc_segment.try_remove s)
  done;
  let stats = Mc_segment.stats s in
  let get name = Cpool_metrics.Counters.get (Mc_stats.counters stats) name in
  (* Every owner op is lock-free now: pushes publish with one fetch-and-add
     of [bottom], pops (including the last element) commit with one CAS on
     [top]. The locked counters only move under [fast_path:false]. *)
  Alcotest.(check int) "all pushes fast" 8 (get "fast-path pushes");
  Alcotest.(check int) "no locked pushes" 0 (get "locked pushes");
  Alcotest.(check int) "all pops fast" 8 (get "fast-path pops");
  Alcotest.(check int) "no locked pops" 0 (get "locked pops");
  Alcotest.(check int) "uncontended: no CAS retries" 0 (get "top CAS retries");
  Alcotest.(check (float 0.0)) "fraction is 1" 1.0 (Mc_stats.fast_path_fraction stats)

let test_segment_baseline_mode () =
  (* fast_path:false is the benchmark's all-mutex twin: same results, all
     owner traffic on the locked counters. *)
  let s : int Mc_segment.t = Mc_segment.make ~fast_path:false ~id:0 () in
  for i = 1 to 8 do
    Mc_segment.add s i
  done;
  for _ = 1 to 8 do
    ignore (Mc_segment.try_remove s)
  done;
  Alcotest.(check int) "empty" 0 (Mc_segment.size s);
  let stats = Mc_segment.stats s in
  Alcotest.(check int) "no fast ops" 0 (Mc_stats.fast_path_ops stats);
  Alcotest.(check int) "all ops locked" 16 (Mc_stats.locked_path_ops stats)

let test_segment_steal_batch_stats () =
  (* Batch-size telemetry lives on the thief's handle now: with the victim
     segment lock-free there is no serialization point left on its side to
     record a single-writer sample. Exercise it through the pool. *)
  let pool : int Mc_pool.t = Mc_pool.of_config { Mc_pool.Config.default with segments = 2 } in
  let h0 = Mc_pool.register_at pool 0 in
  let h1 = Mc_pool.register_at pool 1 in
  for i = 1 to 8 do
    Mc_pool.add pool h1 i
  done;
  (* Steal 1: ceil(8/2) = 4 claimed in one batched CAS window. *)
  Alcotest.(check (option int)) "first steal, victim's oldest" (Some 1)
    (Mc_pool.try_remove pool h0);
  for _ = 1 to 3 do
    ignore (Mc_pool.try_remove_local pool h0)
  done;
  (* Steal 2: victim holds 5..8, so ceil(4/2) = 2 claimed. *)
  Alcotest.(check (option int)) "second steal" (Some 5) (Mc_pool.try_remove pool h0);
  ignore (Mc_pool.try_remove_local pool h0);
  (* Steal 3: victim holds 7 and 8 — a single-element claim. *)
  Alcotest.(check (option int)) "single steal" (Some 7) (Mc_pool.try_remove pool h0);
  let stats = Mc_pool.stats_of_handle h0 in
  Alcotest.(check int) "only multi-element steals are batched" 2
    (Cpool_metrics.Counters.get (Mc_stats.counters stats) "batched steals");
  let sizes = Mc_stats.steal_batch_sizes stats in
  Alcotest.(check int) "every steal sampled" 3 (Cpool_metrics.Sample.n sizes);
  Alcotest.(check (float 0.0)) "largest batch" 4.0 (Cpool_metrics.Sample.max_value sizes)

let test_segment_concurrent_steal_disjoint () =
  (* Two stealer domains race batched CAS claims on one owner's ring while
     the owner keeps pushing and popping. Element identity proves loot
     disjointness: every pushed element comes out exactly once — a failed
     claim that still delivered (double-take) or a lost window would break
     the multiset equality. *)
  let s : int Mc_segment.t = Mc_segment.make ~id:0 () in
  let total = 20_000 in
  let loot = Array.make 2 [] in
  let stop = Atomic.make false in
  let thieves =
    List.init 2 (fun i ->
        Domain.spawn (fun () ->
            let acc = ref [] in
            while not (Atomic.get stop) do
              match Mc_segment.steal_half ~max_take:3 s with
              | Cpool.Steal.Nothing -> Domain.cpu_relax ()
              | Cpool.Steal.Single x -> acc := x :: !acc
              | Cpool.Steal.Batch (x, rest) -> acc := List.rev_append (x :: rest) !acc
            done;
            loot.(i) <- !acc))
  in
  let popped = ref [] in
  for i = 1 to total do
    Mc_segment.add s i;
    if i mod 3 = 0 then
      match Mc_segment.try_remove s with
      | Some x -> popped := x :: !popped
      | None -> ()
  done;
  Atomic.set stop true;
  List.iter Domain.join thieves;
  let rec drain () =
    match Mc_segment.try_remove s with
    | Some x ->
      popped := x :: !popped;
      drain ()
    | None -> ()
  in
  drain ();
  let all = List.concat [ loot.(0); loot.(1); !popped ] in
  Alcotest.(check int) "conserved" total (List.length all);
  Alcotest.(check bool) "every element exactly once" true
    (List.sort compare all = List.init total (fun i -> i + 1));
  Alcotest.(check bool) "consistent" true (Mc_segment.invariant_ok s)

let test_segment_mpsc_drain_completeness () =
  (* Three spiller domains CAS-push onto the MPSC inbox while the owner
     pops concurrently. Spill traffic is FIFO end-to-end (the drain
     reverses the Treiber stack back to arrival order before folding it
     into the ring), so each spiller's elements must come out in its own
     push order; and with no stealers, every spilled element must arrive
     through an owner drain. *)
  let s : (int * int) Mc_segment.t = Mc_segment.make ~id:0 () in
  let per = 5_000 in
  let spillers_done = Atomic.make 0 in
  let spillers =
    List.init 3 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per do
              while not (Mc_segment.spill_add s (d, i)) do
                Domain.cpu_relax ()
              done
            done;
            Atomic.incr spillers_done))
  in
  let total = 3 * per in
  let seen = Array.make 3 0 in
  let got = ref 0 in
  while !got < total do
    match Mc_segment.try_remove s with
    | Some (d, i) ->
      incr got;
      if i <> seen.(d) + 1 then
        Alcotest.failf "spiller %d out of order: got %d after %d" d i seen.(d);
      seen.(d) <- i
    | None ->
      if Atomic.get spillers_done = 3 && Mc_segment.size s = 0 then
        Alcotest.failf "lost elements: only %d of %d drained" !got total;
      Domain.cpu_relax ()
  done;
  List.iter Domain.join spillers;
  Alcotest.(check bool) "drained dry" true (Mc_segment.try_remove s = None);
  Alcotest.(check bool) "consistent" true (Mc_segment.invariant_ok s);
  let c = Mc_stats.counters (Mc_segment.stats s) in
  Alcotest.(check int) "every spill was an inbox add" total
    (Cpool_metrics.Counters.get c "inbox adds");
  Alcotest.(check int) "every inbox element drained by the owner" total
    (Cpool_metrics.Counters.get c "inbox drained")

let test_pool_fast_path_off_equivalent kind () =
  (* The baseline pool must behave identically (it is the same protocol,
     minus the lock elision): run the conservation workload on it. *)
  test_conservation_under_domains ~fast_path:false kind ()

let test_mc_bench_smoke () =
  let cell =
    {
      Cpool_mc.Mc_bench.kind = Mc_pool.Linear;
      domains = 2;
      workload = Cpool_intf.Workload.sufficient;
      fast_path = true;
      topo = None;
      aware = true;
    }
  in
  let r = Cpool_mc.Mc_bench.run_cell ~seconds:0.05 cell in
  Alcotest.(check bool) "did work" true (r.Cpool_mc.Mc_bench.ops > 0);
  Alcotest.(check bool) "throughput positive" true (r.Cpool_mc.Mc_bench.ops_per_sec > 0.0);
  Alcotest.(check bool) "fast path used" true (r.Cpool_mc.Mc_bench.fast_ops > 0);
  let config =
    {
      Cpool_mc.Mc_bench.default with
      workloads =
        [ { Cpool_intf.Workload.sufficient with duration_s = 0.05 } ];
      domain_counts = [ 2 ];
    }
  in
  let doc = Cpool_mc.Mc_bench.to_json config [ r ] in
  match Cpool_util.Json.parse (Cpool_util.Json.to_string doc) with
  | Error e -> Alcotest.fail ("emitted JSON does not re-parse: " ^ e)
  | Ok doc' -> (
    match Cpool_mc.Mc_bench.validate_json doc' with
    | Ok 1 -> ()
    | Ok n -> Alcotest.fail (Printf.sprintf "expected 1 cell, validator saw %d" n)
    | Error e -> Alcotest.fail ("validator rejected the artifact: " ^ e))

let suites =
  main_suites
  @ [
    ( "mcpool.ring",
      [
        Alcotest.test_case "spill_add capacity and retrieval" `Quick test_segment_spill_add;
        Alcotest.test_case "ring wrap churn conserves" `Quick test_segment_ring_wrap_churn;
        Alcotest.test_case "fast-path counters" `Quick test_segment_fast_path_stats;
        Alcotest.test_case "all-mutex baseline mode" `Quick test_segment_baseline_mode;
        Alcotest.test_case "batched-steal stats" `Quick test_segment_steal_batch_stats;
        Alcotest.test_case "concurrent steal loot disjoint" `Quick
          test_segment_concurrent_steal_disjoint;
        Alcotest.test_case "mpsc drain completeness + FIFO" `Quick
          test_segment_mpsc_drain_completeness;
        Alcotest.test_case "mc_bench smoke + JSON artifact" `Quick test_mc_bench_smoke;
      ]
      @ per_kind "baseline conservation under domains" test_pool_fast_path_off_equivalent );
    ( "mcpool.lifecycle",
      [
        Alcotest.test_case "deregister releases slot" `Quick test_deregister_releases_slot;
        Alcotest.test_case "double deregister rejected" `Quick test_double_deregister_rejected;
        Alcotest.test_case "register/deregister churn x1000" `Quick
          test_register_deregister_churn;
        Alcotest.test_case "concurrent churn" `Quick test_concurrent_churn;
      ]
      @ per_kind "deregister while draining" test_deregister_while_draining );
    ( "mcpool.stats",
      [
        Alcotest.test_case "per-handle counters" `Quick test_stats_counters;
        Alcotest.test_case "pool stats survive churn" `Quick test_stats_survive_churn;
        Alcotest.test_case "telemetry table" `Quick test_stats_render;
      ]
      @ per_kind "stress harness smoke" test_stress_harness );
    ( "mcpool.bounded",
      [
        Alcotest.test_case "spill and reject" `Quick test_bounded_spill_and_reject;
        Alcotest.test_case "capacity validated" `Quick test_bounded_capacity_validated;
        Alcotest.test_case "steal capped" `Quick test_bounded_steal_capped;
        Alcotest.test_case "deposit overflow" `Quick test_segment_deposit_overflow;
        Alcotest.test_case "reserve and refill" `Quick test_segment_reserve_refill;
      ]
      @ per_kind "capacity never exceeded" test_bounded_capacity_never_exceeded );
  ]
