(* Tests for pool segments: add/remove/steal/deposit semantics and costing. *)

open Cpool_sim
open Cpool

let mk ?(home = 0) ?(id = 0) ?(profile = Segment.Counting) ?on_size_change () =
  Segment.make ?on_size_change ~home ~id profile

let test_fresh_empty () =
  let s = mk () in
  Alcotest.(check int) "empty" 0 (Segment.size_free s);
  Alcotest.(check int) "id" 0 (Segment.id s);
  Alcotest.(check int) "home" 0 (Segment.home s)

let test_add_remove () =
  Sim_harness.in_proc (fun () ->
      let s = mk () in
      Segment.add s "a";
      Segment.add s "b";
      Alcotest.(check int) "size 2" 2 (Segment.size_free s);
      let x = Segment.try_remove s in
      Alcotest.(check bool) "got one" true (x = Some "b" || x = Some "a");
      Alcotest.(check int) "size 1" 1 (Segment.size_free s);
      ignore (Segment.try_remove s);
      Alcotest.(check bool) "empty again" true (Segment.try_remove s = None))

let test_probe_costed () =
  Sim_harness.in_proc (fun () ->
      let local = mk ~home:0 () and remote = mk ~home:5 () in
      let t0 = Engine.clock () in
      Alcotest.(check int) "probe reads size" 0 (Segment.probe local);
      let t1 = Engine.clock () in
      ignore (Segment.probe remote);
      let t2 = Engine.clock () in
      Alcotest.(check (float 1e-9)) "local probe" 2.0 (t1 -. t0);
      Alcotest.(check (float 1e-9)) "remote probe 4x" 8.0 (t2 -. t1))

let test_steal_empty () =
  Sim_harness.in_proc (fun () ->
      let s = mk () in
      Alcotest.(check bool) "nothing" true (Segment.steal_half s = Steal.Nothing))

let test_steal_single () =
  Sim_harness.in_proc (fun () ->
      let s = mk () in
      Segment.add s 7;
      (match Segment.steal_half s with
      | Steal.Single 7 -> ()
      | _ -> Alcotest.fail "expected Single 7");
      Alcotest.(check int) "drained" 0 (Segment.size_free s))

let test_steal_half_counts () =
  (* n elements -> thief takes ceil(n/2), victim keeps floor(n/2). *)
  let steal_of n =
    Sim_harness.in_proc (fun () ->
        let s = mk () in
        for i = 1 to n do
          Segment.add s i
        done;
        let loot = Segment.steal_half s in
        (Steal.loot_size loot, Segment.size_free s))
  in
  List.iter
    (fun (n, expect_taken) ->
      let taken, left = steal_of n in
      Alcotest.(check int) (Printf.sprintf "taken of %d" n) expect_taken taken;
      Alcotest.(check int) (Printf.sprintf "left of %d" n) (n - expect_taken) left)
    [ (2, 1); (3, 2); (4, 2); (5, 3); (10, 5); (11, 6); (99, 50) ]

let test_deposit () =
  Sim_harness.in_proc (fun () ->
      let s = mk () in
      Segment.deposit s [ 1; 2; 3 ];
      Alcotest.(check int) "deposited" 3 (Segment.size_free s);
      Segment.deposit s [];
      Alcotest.(check int) "empty deposit is a no-op" 3 (Segment.size_free s))

let test_prefill_free () =
  let s = mk () in
  (* Outside any process: prefill must not need an engine. *)
  for i = 1 to 5 do
    Segment.prefill_one s i
  done;
  Alcotest.(check int) "prefilled" 5 (Segment.size_free s)

let test_conservation_of_elements () =
  Sim_harness.in_proc (fun () ->
      let victim = mk ~home:0 ~id:0 () and thief = mk ~home:1 ~id:1 () in
      for i = 1 to 9 do
        Segment.add victim i
      done;
      match Segment.steal_half victim with
      | Steal.Batch (x, rest) ->
        Segment.deposit thief rest;
        let total = 1 + Segment.size_free victim + Segment.size_free thief in
        Alcotest.(check int) "no element lost" 9 total;
        Alcotest.(check bool) "element real" true (x >= 1 && x <= 9)
      | _ -> Alcotest.fail "expected Batch")

let test_size_change_callback () =
  let sizes = ref [] in
  Sim_harness.in_proc (fun () ->
      let s = mk ~on_size_change:(fun n -> sizes := n :: !sizes) () in
      Segment.add s 1;
      Segment.add s 2;
      ignore (Segment.try_remove s);
      Segment.deposit s [ 3; 4 ]);
  Alcotest.(check (list int)) "sizes observed" [ 1; 2; 1; 3 ] (List.rev !sizes)

let test_boxed_charges_transfer () =
  (* Boxed profile charges one access per element moved; counting does not.
     Compare the virtual time of stealing 10 elements. *)
  let elapsed profile =
    Sim_harness.in_proc (fun () ->
        let s = mk ~home:1 ~profile () in
        for i = 1 to 20 do
          Segment.prefill_one s i
        done;
        let t0 = Engine.clock () in
        ignore (Segment.steal_half s);
        Engine.clock () -. t0)
  in
  let counting = elapsed Segment.Counting and boxed = elapsed Segment.Boxed in
  Alcotest.(check bool)
    (Printf.sprintf "boxed (%.1f) slower than counting (%.1f)" boxed counting)
    true
    (boxed -. counting = 10.0 *. 8.0)

let test_remove_lifo_locality () =
  (* The segment behaves as a stack: the most recently added element comes
     back first (element identity does not matter to the pool, but the
     implementation should be deterministic). *)
  Sim_harness.in_proc (fun () ->
      let s = mk () in
      List.iter (Segment.add s) [ 1; 2; 3 ];
      Alcotest.(check (option int)) "lifo" (Some 3) (Segment.try_remove s))

let prop_steal_takes_ceil_half =
  QCheck.Test.make ~name:"steal_half takes exactly ceil(n/2)" ~count:100
    QCheck.(int_range 0 500)
    (fun n ->
      Sim_harness.in_proc (fun () ->
          let s = mk () in
          for i = 1 to n do
            Segment.prefill_one s i
          done;
          let loot = Segment.steal_half s in
          Steal.loot_size loot = (n + 1) / 2 && Segment.size_free s = n / 2))

let prop_random_op_sequence_conserves =
  (* Any interleaving of adds/removes keeps size = adds - successful removes
     and never goes negative. *)
  QCheck.Test.make ~name:"segment size tracks operations" ~count:100
    QCheck.(list (option unit))
    (fun ops ->
      Sim_harness.in_proc (fun () ->
          let s = mk () in
          let balance = ref 0 in
          List.iter
            (function
              | Some () ->
                Segment.add s ();
                incr balance
              | None -> if Segment.try_remove s <> None then decr balance)
            ops;
          !balance >= 0 && Segment.size_free s = !balance))

(* --- Multicore segment: the one-element owner/stealer boundary ---

   The hardest spot of the lock-free protocol: one element in the ring and
   the owner's pop racing a stealer's claim on the same [top] CAS. Exactly
   one side must win each round — never both (duplication), never neither
   (loss). Real domains, many rounds. *)
let test_mc_one_element_boundary () =
  let module M = Cpool_mc.Mc_segment in
  let s : int M.t = M.make ~id:0 () in
  let rounds = 2_000 in
  let round_no = Atomic.make 0 in
  let acked = Atomic.make 0 in
  let stolen = Atomic.make 0 in
  let thief =
    Domain.spawn (fun () ->
        for r = 1 to rounds do
          while Atomic.get round_no < r do
            Domain.cpu_relax ()
          done;
          (match M.steal_half ~max_take:1 s with
          | Steal.Single x ->
            if x <> r then failwith "thief got a stale element";
            Atomic.incr stolen
          | Steal.Nothing -> ()
          | Steal.Batch _ -> failwith "max_take:1 returned a batch");
          Atomic.incr acked
        done)
  in
  let owner_wins = ref 0 in
  for r = 1 to rounds do
    M.add s r;
    Atomic.set round_no r;
    (match M.try_remove s with
    | Some x ->
      if x <> r then Alcotest.failf "owner got a stale element in round %d" r;
      incr owner_wins
    | None -> ());
    while Atomic.get acked < r do
      Domain.cpu_relax ()
    done;
    if M.size s <> 0 then Alcotest.failf "element neither popped nor stolen in round %d" r
  done;
  Domain.join thief;
  Alcotest.(check int) "exactly one winner per round" rounds
    (!owner_wins + Atomic.get stolen);
  Alcotest.(check bool) "consistent" true (M.invariant_ok s)

let suites =
  [
    ( "segment",
      [
        Alcotest.test_case "fresh is empty" `Quick test_fresh_empty;
        Alcotest.test_case "add/remove" `Quick test_add_remove;
        Alcotest.test_case "probe is costed" `Quick test_probe_costed;
        Alcotest.test_case "steal from empty" `Quick test_steal_empty;
        Alcotest.test_case "steal single" `Quick test_steal_single;
        Alcotest.test_case "steal takes half" `Quick test_steal_half_counts;
        Alcotest.test_case "deposit" `Quick test_deposit;
        Alcotest.test_case "prefill without engine" `Quick test_prefill_free;
        Alcotest.test_case "conservation across steal" `Quick test_conservation_of_elements;
        Alcotest.test_case "size-change callback" `Quick test_size_change_callback;
        Alcotest.test_case "boxed charges transfer" `Quick test_boxed_charges_transfer;
        Alcotest.test_case "LIFO locality" `Quick test_remove_lifo_locality;
        QCheck_alcotest.to_alcotest prop_steal_takes_ceil_half;
        QCheck_alcotest.to_alcotest prop_random_op_sequence_conserves;
        Alcotest.test_case "mc one-element owner/stealer boundary" `Quick
          test_mc_one_element_boundary;
      ] );
  ]
