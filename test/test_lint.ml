(* Tests for the pools_lint static analyzer and interleaving checker:
   each rule fires on its known-bad fixture, stays quiet on the known-good
   one, suppressions work, lib/ self-lints clean, and the schedule
   enumerator both passes the real segment and catches a seeded race. *)

open Cpool_analysis

let fixture name = Filename.concat "lint_fixtures" name

let rules_of findings =
  List.sort_uniq String.compare (List.map (fun f -> f.Lint_rules.rule) findings)

let count_rule rule findings =
  List.length (List.filter (fun f -> String.equal f.Lint_rules.rule rule) findings)

let check_fixture_exists () =
  Alcotest.(check bool)
    "fixture corpus present" true
    (Sys.file_exists (fixture "bad_raw_mutex.ml"))

(* Fixtures live outside the R4 directories, so force the rule on. *)
let lint name = Lint_driver.lint_file ~ban_random:true (fixture name)

let test_r1_fires () =
  let fs = lint "bad_raw_mutex.ml" in
  Alcotest.(check int) "two raw mutex ops" 2 (count_rule Lint_rules.raw_mutex fs);
  Alcotest.(check (list string)) "only R1" [ Lint_rules.raw_mutex ] (rules_of fs)

let test_r1_quiet () =
  Alcotest.(check (list string)) "clean" [] (rules_of (lint "good_raw_mutex.ml"))

let test_r2_fires () =
  let fs = lint "bad_rmw.ml" in
  Alcotest.(check int)
    "direct + let-split + get-then-set rmw" 3
    (count_rule Lint_rules.non_atomic_rmw fs);
  Alcotest.(check (list string)) "only R2" [ Lint_rules.non_atomic_rmw ] (rules_of fs)

let test_r2_quiet_and_suppressed () =
  (* good_rmw.ml contains a suppressed Atomic.set-of-get with a reason, a
     CAS-retry loop, a CAS-sanctioned blind reset, and a cross-closure
     get/set pair: no findings must survive. *)
  Alcotest.(check (list string)) "clean" [] (rules_of (lint "good_rmw.ml"))

let test_r3_fires () =
  let fs = lint "bad_blocking.ml" in
  Alcotest.(check int)
    "sleep + nested lock" 2
    (count_rule Lint_rules.blocking_under_lock fs);
  Alcotest.(check (list string))
    "only R3" [ Lint_rules.blocking_under_lock ] (rules_of fs)

let test_r3_quiet () =
  Alcotest.(check (list string)) "clean" [] (rules_of (lint "good_blocking.ml"))

let test_r4_fires () =
  let fs = lint "bad_random.ml" in
  Alcotest.(check int)
    "self_init + int + make_self_init" 3
    (count_rule Lint_rules.ambient_random fs);
  Alcotest.(check (list string)) "only R4" [ Lint_rules.ambient_random ] (rules_of fs)

let test_r4_quiet () =
  Alcotest.(check (list string)) "clean" [] (rules_of (lint "good_random.ml"))

let test_r4_scope () =
  (* Outside the banned directories the rule defaults off. *)
  let fs = Lint_driver.lint_file (fixture "bad_random.ml") in
  Alcotest.(check int) "off by default here" 0 (count_rule Lint_rules.ambient_random fs)

let test_r5_fires () =
  let fs = Lint_driver.lint_tree ~require_mli:true [ fixture "r5_bad" ] in
  Alcotest.(check int) "missing mli" 1 (count_rule Lint_rules.missing_mli fs)

let test_r5_quiet () =
  let fs = Lint_driver.lint_tree ~require_mli:true [ fixture "r5_good" ] in
  Alcotest.(check (list string)) "clean" [] (rules_of fs)

let test_suppression_needs_reason () =
  let src = "let x = 1\n(* lint: " ^ "allow non-atomic-rmw *)\nlet y = 2\n" in
  let fs = Lint_driver.lint_source ~file:"inline.ml" src in
  Alcotest.(check int) "reasonless" 1 (count_rule Lint_rules.bad_suppression fs)

let test_suppression_unknown_rule () =
  let src = "(* lint: " ^ "allow no-such-rule -- because *)\nlet x = 1\n" in
  let fs = Lint_driver.lint_source ~file:"inline.ml" src in
  Alcotest.(check int) "unknown rule" 1 (count_rule Lint_rules.bad_suppression fs)

let test_parse_error_reported () =
  let fs = Lint_driver.lint_source ~file:"broken.ml" "let let let" in
  Alcotest.(check int) "parse error" 1 (count_rule Lint_rules.parse_error fs)

(* The acceptance bar: the shipped libraries are lint-clean (any intentional
   escape must be a documented suppression, which silences the finding). *)
let test_self_lint () =
  let lib = Filename.concat ".." "lib" in
  Alcotest.(check bool) "lib/ visible from test dir" true (Sys.file_exists lib);
  let fs = Lint_driver.lint_tree ~require_mli:true [ lib ] in
  let msg = String.concat "; " (List.map (Format.asprintf "%a" Lint_rules.pp) fs) in
  Alcotest.(check string) "lib/ lints clean" "" msg

(* Interleaving checker: every scenario must hold under every schedule, and
   each scenario must actually branch (>= 2 schedules) or it proves
   nothing. *)
let null_ppf = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let test_interleave_passes () =
  let outcomes = Interleave.run_all null_ppf in
  Alcotest.(check int) "eleven scenarios" 11 (List.length outcomes);
  List.iter
    (fun (name, schedules) ->
      Alcotest.(check bool) (name ^ " explored > 1 schedule") true (schedules > 1))
    outcomes

(* Harness sanity: a deliberately racy non-atomic RMW on the shim primitives
   must be caught — two increments via set-of-get lose an update under some
   interleaving. *)
let test_interleave_catches_lost_update () =
  let module A = Sched.Prim.Atomic in
  let instance () =
    let c = A.make 0 in
    let bump () = A.set c (A.get c + 1) in
    {
      Sched.threads = [ bump; bump ];
      check_step = (fun () -> ());
      check_final =
        (fun () -> if A.get c <> 2 then failwith "lost update");
    }
  in
  match Sched.explore instance with
  | _ -> Alcotest.fail "racy RMW escaped the schedule enumeration"
  | exception Failure msg ->
    Alcotest.(check string) "the race was found" "lost update" msg

(* And the mutex shim: the same RMW under a lock is correct in every
   schedule. *)
let test_interleave_lock_protects () =
  let module A = Sched.Prim.Atomic in
  let module L = Sched.Prim.Mutex in
  let instance () =
    let c = A.make 0 in
    let m = L.create () in
    let bump () =
      L.lock m;
      A.set c (A.get c + 1);
      L.unlock m
    in
    {
      Sched.threads = [ bump; bump ];
      check_step = (fun () -> ());
      check_final = (fun () -> if A.get c <> 2 then failwith "lost update");
    }
  in
  let schedules = Sched.explore instance in
  Alcotest.(check bool) "explored" true (schedules > 1)

let suites =
  [
    ( "lint",
      [
        Alcotest.test_case "fixtures present" `Quick check_fixture_exists;
        Alcotest.test_case "R1 fires" `Quick test_r1_fires;
        Alcotest.test_case "R1 quiet" `Quick test_r1_quiet;
        Alcotest.test_case "R2 fires" `Quick test_r2_fires;
        Alcotest.test_case "R2 quiet + suppression" `Quick test_r2_quiet_and_suppressed;
        Alcotest.test_case "R3 fires" `Quick test_r3_fires;
        Alcotest.test_case "R3 quiet" `Quick test_r3_quiet;
        Alcotest.test_case "R4 fires" `Quick test_r4_fires;
        Alcotest.test_case "R4 quiet" `Quick test_r4_quiet;
        Alcotest.test_case "R4 scoped to concurrent dirs" `Quick test_r4_scope;
        Alcotest.test_case "R5 fires" `Quick test_r5_fires;
        Alcotest.test_case "R5 quiet" `Quick test_r5_quiet;
        Alcotest.test_case "suppression needs reason" `Quick test_suppression_needs_reason;
        Alcotest.test_case "suppression unknown rule" `Quick test_suppression_unknown_rule;
        Alcotest.test_case "parse errors reported" `Quick test_parse_error_reported;
        Alcotest.test_case "self-lint: lib/ is clean" `Quick test_self_lint;
      ] );
    ( "interleave",
      [
        Alcotest.test_case "segment scenarios hold" `Quick test_interleave_passes;
        Alcotest.test_case "catches lost update" `Quick test_interleave_catches_lost_update;
        Alcotest.test_case "mutex shim protects" `Quick test_interleave_lock_protects;
      ] );
  ]
