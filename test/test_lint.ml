(* Tests for the pools_lint static analyzer and interleaving checker:
   each rule fires on its known-bad fixture, stays quiet on the known-good
   one, suppressions work, lib/ self-lints clean, and the schedule
   enumerator both passes the real segment and catches a seeded race. *)

open Cpool_analysis

let fixture name = Filename.concat "lint_fixtures" name

let rules_of findings =
  List.sort_uniq String.compare (List.map (fun f -> f.Lint_rules.rule) findings)

let count_rule rule findings =
  List.length (List.filter (fun f -> String.equal f.Lint_rules.rule rule) findings)

let check_fixture_exists () =
  Alcotest.(check bool)
    "fixture corpus present" true
    (Sys.file_exists (fixture "bad_raw_mutex.ml"))

(* Fixtures live outside the R4 directories, so force the rule on. *)
let lint name = Lint_driver.lint_file ~ban_random:true (fixture name)

let test_r1_fires () =
  let fs = lint "bad_raw_mutex.ml" in
  Alcotest.(check int) "two raw mutex ops" 2 (count_rule Lint_rules.raw_mutex fs);
  Alcotest.(check (list string)) "only R1" [ Lint_rules.raw_mutex ] (rules_of fs)

let test_r1_quiet () =
  Alcotest.(check (list string)) "clean" [] (rules_of (lint "good_raw_mutex.ml"))

let test_r2_fires () =
  let fs = lint "bad_rmw.ml" in
  Alcotest.(check int)
    "direct + let-split + get-then-set rmw" 3
    (count_rule Lint_rules.non_atomic_rmw fs);
  Alcotest.(check (list string)) "only R2" [ Lint_rules.non_atomic_rmw ] (rules_of fs)

let test_r2_quiet_and_suppressed () =
  (* good_rmw.ml contains a suppressed Atomic.set-of-get with a reason, a
     CAS-retry loop, a CAS-sanctioned blind reset, and a cross-closure
     get/set pair: no findings must survive. *)
  Alcotest.(check (list string)) "clean" [] (rules_of (lint "good_rmw.ml"))

let test_r3_fires () =
  let fs = lint "bad_blocking.ml" in
  Alcotest.(check int)
    "sleep + nested lock" 2
    (count_rule Lint_rules.blocking_under_lock fs);
  Alcotest.(check (list string))
    "only R3" [ Lint_rules.blocking_under_lock ] (rules_of fs)

let test_r3_quiet () =
  Alcotest.(check (list string)) "clean" [] (rules_of (lint "good_blocking.ml"))

let test_r4_fires () =
  let fs = lint "bad_random.ml" in
  Alcotest.(check int)
    "self_init + int + make_self_init" 3
    (count_rule Lint_rules.ambient_random fs);
  Alcotest.(check (list string)) "only R4" [ Lint_rules.ambient_random ] (rules_of fs)

let test_r4_quiet () =
  Alcotest.(check (list string)) "clean" [] (rules_of (lint "good_random.ml"))

let test_r4_scope () =
  (* Outside the banned directories the rule defaults off. *)
  let fs = Lint_driver.lint_file (fixture "bad_random.ml") in
  Alcotest.(check int) "off by default here" 0 (count_rule Lint_rules.ambient_random fs)

let test_r5_fires () =
  let fs = Lint_driver.lint_tree ~require_mli:true [ fixture "r5_bad" ] in
  Alcotest.(check int) "missing mli" 1 (count_rule Lint_rules.missing_mli fs)

let test_r5_quiet () =
  let fs = Lint_driver.lint_tree ~require_mli:true [ fixture "r5_good" ] in
  Alcotest.(check (list string)) "clean" [] (rules_of fs)

let test_suppression_needs_reason () =
  let src = "let x = 1\n(* lint: " ^ "allow non-atomic-rmw *)\nlet y = 2\n" in
  let fs = Lint_driver.lint_source ~file:"inline.ml" src in
  Alcotest.(check int) "reasonless" 1 (count_rule Lint_rules.bad_suppression fs)

let test_suppression_unknown_rule () =
  let src = "(* lint: " ^ "allow no-such-rule -- because *)\nlet x = 1\n" in
  let fs = Lint_driver.lint_source ~file:"inline.ml" src in
  Alcotest.(check int) "unknown rule" 1 (count_rule Lint_rules.bad_suppression fs)

let test_r6_fires () =
  let fs = lint "bad_raw_obj.ml" in
  Alcotest.(check int)
    "magic + repr + obj + qualified magic" 4
    (count_rule Lint_rules.raw_obj fs);
  Alcotest.(check (list string)) "only R6" [ Lint_rules.raw_obj ] (rules_of fs)

let test_r6_quiet () =
  Alcotest.(check (list string)) "clean" [] (rules_of (lint "good_raw_obj.ml"))

let test_r6_sanctioned_modules () =
  (* The same cast inside a sanctioned module (keyed on basename) is the
     certified container's business, not a finding. *)
  let src = "let f (x : int) : bool = Obj.magic x\n" in
  let flagged file =
    count_rule Lint_rules.raw_obj (Lint_driver.lint_source ~file src)
  in
  Alcotest.(check int) "sanctioned in the segment core" 0
    (flagged "lib/mcpool/mc_segment_core.ml");
  Alcotest.(check int) "sanctioned in the scheduler" 0
    (flagged "lib/analysis/sched.ml");
  Alcotest.(check int) "flagged elsewhere" 1 (flagged "lib/mcpool/mc_pool.ml")

let test_parse_error_reported () =
  let fs = Lint_driver.lint_source ~file:"broken.ml" "let let let" in
  Alcotest.(check int) "parse error" 1 (count_rule Lint_rules.parse_error fs)

(* The acceptance bar: the shipped libraries are lint-clean (any intentional
   escape must be a documented suppression, which silences the finding). *)
let test_self_lint () =
  let lib = Filename.concat ".." "lib" in
  Alcotest.(check bool) "lib/ visible from test dir" true (Sys.file_exists lib);
  let fs = Lint_driver.lint_tree ~require_mli:true [ lib ] in
  let msg = String.concat "; " (List.map (Format.asprintf "%a" Lint_rules.pp) fs) in
  Alcotest.(check string) "lib/ lints clean" "" msg

(* Interleaving checker: every scenario must hold under every schedule, and
   each scenario must actually branch (>= 2 schedules) or it proves
   nothing. *)
let null_ppf = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let test_interleave_passes () =
  let outcomes = Interleave.run_all null_ppf in
  Alcotest.(check int) "scenario count matches the registry" Interleave.count
    (List.length outcomes);
  List.iter
    (fun (name, schedules) ->
      Alcotest.(check bool) (name ^ " explored > 1 schedule") true (schedules > 1))
    outcomes

(* Harness sanity: a deliberately racy non-atomic RMW on the shim primitives
   must be caught — two increments via set-of-get lose an update under some
   interleaving. *)
let test_interleave_catches_lost_update () =
  let module A = Sched.Prim.Atomic in
  let instance () =
    let c = A.make 0 in
    let bump () = A.set c (A.get c + 1) in
    {
      Sched.threads = [ bump; bump ];
      check_step = (fun () -> ());
      check_final =
        (fun () -> if A.get c <> 2 then failwith "lost update");
    }
  in
  match Sched.explore instance with
  | _ -> Alcotest.fail "racy RMW escaped the schedule enumeration"
  | exception Failure msg ->
    Alcotest.(check string) "the race was found" "lost update" msg

(* And the mutex shim: the same RMW under a lock is correct in every
   schedule. *)
let test_interleave_lock_protects () =
  let module A = Sched.Prim.Atomic in
  let module L = Sched.Prim.Mutex in
  let instance () =
    let c = A.make 0 in
    let m = L.create () in
    let bump () =
      L.lock m;
      A.set c (A.get c + 1);
      L.unlock m
    in
    {
      Sched.threads = [ bump; bump ];
      check_step = (fun () -> ());
      check_final = (fun () -> if A.get c <> 2 then failwith "lost update");
    }
  in
  let schedules = Sched.explore instance in
  Alcotest.(check bool) "explored" true (schedules > 1)

(* ---- scheduler failure modes ---------------------------------------- *)

let contains msg sub =
  let n = String.length msg and m = String.length sub in
  let rec find j = j + m <= n && (String.sub msg j m = sub || find (j + 1)) in
  find 0

(* A fiber locking its own held mutex can never be rescheduled: the
   explorer must report the deadlock, not hang or count the run. *)
let test_deadlock_raises () =
  let module L = Sched.Prim.Mutex in
  let instance () =
    let m = L.create () in
    let stuck () =
      L.lock m;
      L.lock m
    in
    {
      Sched.threads = [ stuck ];
      check_step = (fun () -> ());
      check_final = (fun () -> ());
    }
  in
  match Sched.explore instance with
  | _ -> Alcotest.fail "self-deadlock not detected"
  | exception Sched.Deadlock -> ()

let test_exploded_names_schedule_bound () =
  let module A = Sched.Prim.Atomic in
  let instance () =
    let a = A.make 0 and b = A.make 0 in
    let w () =
      A.set a 1;
      A.set b 1
    in
    {
      Sched.threads = [ w; w ];
      check_step = (fun () -> ());
      check_final = (fun () -> ());
    }
  in
  match Sched.explore ~mode:Sched.Exhaustive ~max_schedules:3 instance with
  | _ -> Alcotest.fail "schedule bound not enforced"
  | exception Sched.Exploded msg ->
    Alcotest.(check bool) ("bound named in: " ^ msg) true (contains msg "3")

let test_exploded_names_step_bound () =
  let module A = Sched.Prim.Atomic in
  let instance () =
    let c = A.make 0 in
    let spin () =
      for _ = 1 to 10_001 do
        A.set c 1
      done
    in
    {
      Sched.threads = [ spin ];
      check_step = (fun () -> ());
      check_final = (fun () -> ());
    }
  in
  match Sched.explore instance with
  | _ -> Alcotest.fail "step bound not enforced"
  | exception Sched.Exploded msg ->
    Alcotest.(check bool) ("bound named in: " ^ msg) true (contains msg "10000")

(* ---- DPOR vs exhaustive ---------------------------------------------- *)

(* Ground truth: on small scenarios both modes pass with DPOR strictly
   reduced; a seeded lost update fails under both. *)
let test_cross_validate () = Interleave.cross_validate null_ppf

(* The deep scenarios exist because only the reduction can enumerate them:
   each must blow a 20k-schedule exhaustive budget (their full spaces
   exceed one million) while the DPOR run in [run_all] completes. *)
let test_deep_scenarios_need_dpor () =
  List.iter
    (fun n ->
      let sc = List.find (fun s -> s.Interleave.name = n) Interleave.scenarios in
      match
        Sched.explore ~mode:Sched.Exhaustive ~max_schedules:20_000
          sc.Interleave.instance
      with
      | _ ->
        Alcotest.fail
          (n ^ " is exhaustively enumerable; it does not need the reduction")
      | exception Sched.Exploded _ -> ())
    [ "three-stealers"; "hint-three-way"; "spill-spill-drain" ]

(* ---- happens-before race detection ----------------------------------- *)

(* Two unsynchronized plain writes must be flagged on some explored
   interleaving. *)
let test_race_write_write () =
  let module P = Sched.Prim.Plain in
  let instance () =
    let c = P.make 0 in
    let w v () = P.set c v in
    {
      Sched.threads = [ w 1; w 2 ];
      check_step = (fun () -> ());
      check_final = (fun () -> ());
    }
  in
  match Sched.explore instance with
  | _ -> Alcotest.fail "unsynchronized plain writes escaped the race detector"
  | exception Race.Race _ -> ()

let test_race_read_write () =
  let module P = Sched.Prim.Plain in
  let instance () =
    let c = P.make 0 in
    {
      Sched.threads = [ (fun () -> P.set c 1); (fun () -> ignore (P.get c)) ];
      check_step = (fun () -> ());
      check_final = (fun () -> ());
    }
  in
  match Sched.explore instance with
  | _ -> Alcotest.fail "unsynchronized read/write pair escaped the race detector"
  | exception Race.Race _ -> ()

(* The sanctioned racy read is exempt by construction. *)
let test_racy_get_exempt () =
  let module P = Sched.Prim.Plain in
  let instance () =
    let c = P.make 0 in
    {
      Sched.threads =
        [ (fun () -> P.set c 1); (fun () -> ignore (P.racy_get c)) ];
      check_step = (fun () -> ());
      check_final = (fun () -> ());
    }
  in
  Alcotest.(check bool) "explored without a report" true
    (Sched.explore instance >= 1)

(* Mutex release/acquire edges order the protected accesses: no report, in
   any schedule. *)
let test_race_mutex_protected () =
  let module P = Sched.Prim.Plain in
  let module L = Sched.Prim.Mutex in
  let instance () =
    let c = P.make 0 in
    let m = L.create () in
    let w v () =
      L.lock m;
      P.set c v;
      L.unlock m
    in
    {
      Sched.threads = [ w 1; w 2 ];
      check_step = (fun () -> ());
      check_final = (fun () -> ());
    }
  in
  Alcotest.(check bool) "explored race-free" true (Sched.explore instance > 1)

(* Publication via an atomic flag: the write release / read acquire edge
   orders the plain accesses, and the reader's branch keeps the unordered
   path from touching the cell. *)
let test_race_atomic_publish () =
  let module P = Sched.Prim.Plain in
  let module A = Sched.Prim.Atomic in
  let instance () =
    let c = P.make 0 in
    let flag = A.make false in
    let writer () =
      P.set c 1;
      A.set flag true
    in
    let reader () = if A.get flag then ignore (P.get c) in
    {
      Sched.threads = [ writer; reader ];
      check_step = (fun () -> ());
      check_final = (fun () -> ());
    }
  in
  Alcotest.(check bool) "explored race-free" true (Sched.explore instance > 1)

(* ---- linearizability oracle ------------------------------------------ *)

(* A broken steal that reads the cursor and advances it non-atomically
   hands the same element to both thieves under some schedule. Each
   individual result is locally plausible; only the oracle's global
   ordering requirement rejects the history. *)
let test_linz_catches_double_claim () =
  let module A = Sched.Prim.Atomic in
  let instance () =
    let h = Linz.create () in
    Linz.declare_seg h ~id:0 ~capacity:None;
    Linz.record h ~fiber:(-1) ~seg:0 (Linz.Add 41) (fun () -> ());
    Linz.record h ~fiber:(-1) ~seg:0 (Linz.Add 42) (fun () -> ());
    let top = A.make 0 in
    let elems = [| 41; 42 |] in
    let thief i () =
      ignore
        (Linz.record h ~fiber:i ~seg:0 Linz.Steal (fun () ->
             let t = A.get top in
             if t < 2 then begin
               A.set top (t + 1);
               [ elems.(t) ]
             end
             else []))
    in
    {
      Sched.threads = [ thief 0; thief 1 ];
      check_step = (fun () -> ());
      check_final = (fun () -> Linz.check h);
    }
  in
  match Sched.explore instance with
  | _ -> Alcotest.fail "double-handed element passed the linearizability oracle"
  | exception Linz.Not_linearizable _ -> ()

(* The same protocol done right (CAS-advanced cursor) linearizes in every
   schedule. *)
let test_linz_passes_correct_claim () =
  let module A = Sched.Prim.Atomic in
  let instance () =
    let h = Linz.create () in
    Linz.declare_seg h ~id:0 ~capacity:None;
    Linz.record h ~fiber:(-1) ~seg:0 (Linz.Add 41) (fun () -> ());
    Linz.record h ~fiber:(-1) ~seg:0 (Linz.Add 42) (fun () -> ());
    let top = A.make 0 in
    let elems = [| 41; 42 |] in
    let thief i () =
      ignore
        (Linz.record h ~fiber:i ~seg:0 Linz.Steal (fun () ->
             let rec claim () =
               let t = A.get top in
               if t >= 2 then []
               else if A.compare_and_set top t (t + 1) then [ elems.(t) ]
               else claim ()
             in
             claim ()))
    in
    {
      Sched.threads = [ thief 0; thief 1 ];
      check_step = (fun () -> ());
      check_final = (fun () -> Linz.check h);
    }
  in
  Alcotest.(check bool) "all schedules linearizable" true
    (Sched.explore instance > 1)

let suites =
  [
    ( "lint",
      [
        Alcotest.test_case "fixtures present" `Quick check_fixture_exists;
        Alcotest.test_case "R1 fires" `Quick test_r1_fires;
        Alcotest.test_case "R1 quiet" `Quick test_r1_quiet;
        Alcotest.test_case "R2 fires" `Quick test_r2_fires;
        Alcotest.test_case "R2 quiet + suppression" `Quick test_r2_quiet_and_suppressed;
        Alcotest.test_case "R3 fires" `Quick test_r3_fires;
        Alcotest.test_case "R3 quiet" `Quick test_r3_quiet;
        Alcotest.test_case "R4 fires" `Quick test_r4_fires;
        Alcotest.test_case "R4 quiet" `Quick test_r4_quiet;
        Alcotest.test_case "R4 scoped to concurrent dirs" `Quick test_r4_scope;
        Alcotest.test_case "R5 fires" `Quick test_r5_fires;
        Alcotest.test_case "R5 quiet" `Quick test_r5_quiet;
        Alcotest.test_case "R6 fires" `Quick test_r6_fires;
        Alcotest.test_case "R6 quiet + suppression" `Quick test_r6_quiet;
        Alcotest.test_case "R6 sanctioned modules" `Quick test_r6_sanctioned_modules;
        Alcotest.test_case "suppression needs reason" `Quick test_suppression_needs_reason;
        Alcotest.test_case "suppression unknown rule" `Quick test_suppression_unknown_rule;
        Alcotest.test_case "parse errors reported" `Quick test_parse_error_reported;
        Alcotest.test_case "self-lint: lib/ is clean" `Quick test_self_lint;
      ] );
    ( "interleave",
      [
        Alcotest.test_case "segment scenarios hold" `Quick test_interleave_passes;
        Alcotest.test_case "catches lost update" `Quick test_interleave_catches_lost_update;
        Alcotest.test_case "mutex shim protects" `Quick test_interleave_lock_protects;
        Alcotest.test_case "self-deadlock raises" `Quick test_deadlock_raises;
        Alcotest.test_case "Exploded names the schedule bound" `Quick
          test_exploded_names_schedule_bound;
        Alcotest.test_case "Exploded names the step bound" `Quick
          test_exploded_names_step_bound;
      ] );
    ( "dpor",
      [
        Alcotest.test_case "cross-validate modes" `Quick test_cross_validate;
        Alcotest.test_case "deep scenarios need the reduction" `Quick
          test_deep_scenarios_need_dpor;
      ] );
    ( "race",
      [
        Alcotest.test_case "write/write detected" `Quick test_race_write_write;
        Alcotest.test_case "read/write detected" `Quick test_race_read_write;
        Alcotest.test_case "racy_get exempt" `Quick test_racy_get_exempt;
        Alcotest.test_case "mutex-ordered accesses clean" `Quick
          test_race_mutex_protected;
        Alcotest.test_case "atomic publish clean" `Quick test_race_atomic_publish;
      ] );
    ( "linz",
      [
        Alcotest.test_case "double claim rejected" `Quick
          test_linz_catches_double_claim;
        Alcotest.test_case "CAS claim linearizable" `Quick
          test_linz_passes_correct_claim;
      ] );
  ]
