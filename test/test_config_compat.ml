(* The deprecated keyword [Mc_pool.create] must keep compiling and behave
   exactly like [of_config] until the transition window closes. This file
   is the one place allowed to acknowledge the alert — every other caller
   has migrated (the alert is fatal in the dev profile). *)
[@@@alert "-deprecated"]

open Cpool_mc

let test_keyword_create_defaults () =
  let pool : int Mc_pool.t = Mc_pool.create ~segments:3 () in
  Alcotest.(check int) "segments" 3 (Mc_pool.segments pool);
  Alcotest.(check bool) "default kind" true (Mc_pool.kind pool = Mc_pool.Linear);
  Alcotest.(check bool) "no topology" true (Mc_pool.topology pool = None);
  let h = Mc_pool.register pool in
  Mc_pool.add pool h 7;
  Alcotest.(check (option int)) "roundtrip" (Some 7) (Mc_pool.try_remove pool h);
  Mc_pool.deregister pool h

let test_keyword_create_forwards_everything () =
  let pool : int Mc_pool.t =
    Mc_pool.create ~kind:Mc_pool.Hinted ~seed:9L ~capacity:4 ~trace:true ~segments:2 ()
  in
  Alcotest.(check bool) "kind forwarded" true (Mc_pool.kind pool = Mc_pool.Hinted);
  Alcotest.(check bool) "trace forwarded" true (Mc_pool.tracing pool);
  let h = Mc_pool.register_at pool 0 in
  (* capacity is per segment: 2 segments x 4 fit, the 9th add bounces. *)
  for i = 1 to 8 do
    Alcotest.(check bool) "fits in capacity" true (Mc_pool.try_add pool h i)
  done;
  Alcotest.(check bool) "capacity forwarded" false (Mc_pool.try_add pool h 9);
  Mc_pool.deregister pool h

let test_keyword_create_is_thin_wrapper () =
  (* The validation error names of_config: proof the keyword version is a
     wrapper over the record API rather than a second implementation. *)
  Alcotest.check_raises "segments"
    (Invalid_argument "Mc_pool.of_config: segments must be positive") (fun () ->
      ignore (Mc_pool.create ~segments:0 () : unit Mc_pool.t))

let suites =
  [
    ( "mc_pool.config_compat",
      [
        Alcotest.test_case "keyword create: defaults" `Quick test_keyword_create_defaults;
        Alcotest.test_case "keyword create: forwards every field" `Quick
          test_keyword_create_forwards_everything;
        Alcotest.test_case "keyword create: thin wrapper over of_config" `Quick
          test_keyword_create_is_thin_wrapper;
      ] );
  ]
