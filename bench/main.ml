(* The benchmark harness.

   Part 1 regenerates every table and figure of Kotz & Ellis 1989 through
   the experiment registry (one section per paper artifact; see DESIGN.md's
   experiment index and EXPERIMENTS.md for paper-vs-measured commentary).

   Part 2 runs Bechamel micro-benchmarks of the real (multicore) pool's
   operations against a global-lock stack baseline, plus the simulator's
   event throughput — wall-clock numbers for this machine.

   Select experiments and fidelity via argv:
     dune exec bench/main.exe                 -- quick preset, everything
     dune exec bench/main.exe -- --paper      -- full fidelity (10 trials, 3 plies)
     dune exec bench/main.exe -- fig2 fig7    -- just those sections
     dune exec bench/main.exe -- --no-micro   -- skip the Bechamel part *)

open Cpool_experiments

let parse_args () =
  let paper = ref false and micro = ref true and names = ref [] in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--paper" -> paper := true
        | "--quick" -> paper := false
        | "--no-micro" -> micro := false
        | name -> names := name :: !names)
    Sys.argv;
  (!paper, !micro, List.rev !names)

(* --- Part 1: paper experiments --- *)

let run_experiments cfg names =
  let entries =
    match names with
    | [] -> Registry.all
    | names ->
      List.filter_map
        (fun name ->
          match Registry.find name with
          | Some e -> Some e
          | None ->
            Printf.eprintf "unknown experiment %S (known: %s)\n%!" name
              (String.concat ", " Registry.ids);
            None)
        names
  in
  List.iter
    (fun entry ->
      let since_ns = Cpool_util.Clock.now_ns () in
      Printf.printf "==== %s: %s ====\n%!" entry.Registry.id entry.Registry.title;
      print_endline (entry.Registry.run cfg);
      Printf.printf "(%s finished in %.1fs)\n\n%!" entry.Registry.id
        (Cpool_util.Clock.elapsed_s ~since_ns))
    entries

(* --- Part 2: Bechamel micro-benchmarks --- *)

open Bechamel
open Toolkit

let pool_pair kind =
  let pool = Cpool_mc.Mc_pool.of_config { Cpool_mc.Mc_pool.Config.default with kind; segments = 2 } in
  let mine = Cpool_mc.Mc_pool.register_at pool 0 in
  let other = Cpool_mc.Mc_pool.register_at pool 1 in
  (pool, mine, other)

let test_local_add_remove kind name =
  let pool, mine, _ = pool_pair kind in
  Test.make ~name
    (Staged.stage (fun () ->
         Cpool_mc.Mc_pool.add pool mine 42;
         ignore (Cpool_mc.Mc_pool.try_remove_local pool mine)))

let test_steal kind name =
  let pool, mine, other = pool_pair kind in
  Test.make ~name
    (Staged.stage (fun () ->
         (* Two in the victim, zero in ours: try_remove must steal; the
            banked remainder is drained to reset the state. *)
         Cpool_mc.Mc_pool.add pool other 1;
         Cpool_mc.Mc_pool.add pool other 2;
         ignore (Cpool_mc.Mc_pool.try_remove pool mine);
         ignore (Cpool_mc.Mc_pool.try_remove_local pool mine)))

let test_locked_stack_baseline =
  let mutex = Mutex.create () in
  let stack = Cpool_util.Vec.create () in
  Test.make ~name:"baseline: global-lock stack push+pop"
    (Staged.stage (fun () ->
         Mutex.lock mutex;
         Cpool_util.Vec.push stack 42;
         Mutex.unlock mutex;
         Mutex.lock mutex;
         ignore (Cpool_util.Vec.pop stack);
         Mutex.unlock mutex))

let test_sim_throughput =
  Test.make ~name:"simulator: 2-process lock handoff run"
    (Staged.stage (fun () ->
         let e = Cpool_sim.Engine.create ~nodes:2 ~seed:7L () in
         let lock = Cpool_sim.Lock.make ~home:0 in
         for i = 0 to 1 do
           ignore
             (Cpool_sim.Engine.spawn e ~node:i ~name:(string_of_int i) (fun () ->
                  for _ = 1 to 20 do
                    Cpool_sim.Lock.with_lock lock (fun () -> Cpool_sim.Engine.delay 1.0)
                  done))
         done;
         ignore (Cpool_sim.Engine.run e)))

let test_board_ops =
  Test.make ~name:"game: board play + evaluate"
    (Staged.stage (fun () ->
         let b = Cpool_game.Board.play Cpool_game.Board.empty 21 in
         ignore (Cpool_game.Board.evaluate b)))

let micro_tests =
  [
    test_local_add_remove Cpool_mc.Mc_pool.Linear "mcpool linear: local add+remove";
    test_steal Cpool_mc.Mc_pool.Linear "mcpool linear: steal of 2";
    test_steal Cpool_mc.Mc_pool.Random "mcpool random: steal of 2";
    test_steal Cpool_mc.Mc_pool.Tree "mcpool tree: steal of 2";
    test_locked_stack_baseline;
    test_sim_throughput;
    test_board_ops;
  ]

let run_micro () =
  print_endline "==== micro: Bechamel wall-clock benchmarks (this machine) ====";
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let measure test =
    let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
    let ols =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
        instance results
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ ns ] -> Printf.printf "  %-45s %12.1f ns/op\n%!" name ns
        | Some _ | None -> Printf.printf "  %-45s (no estimate)\n%!" name)
      ols
  in
  List.iter measure micro_tests;
  print_newline ()

(* --- Part 3: multi-domain throughput on this machine --- *)

(* A fork/join task storm: every worker both produces and consumes; the
   pool's quiescence detection ends the run. Reported as tasks/second. *)
let domain_throughput ~kind ~domains =
  let pool = Cpool_mc.Mc_pool.of_config { Cpool_mc.Mc_pool.Config.default with kind; segments = domains } in
  let handles = Array.init domains (Cpool_mc.Mc_pool.register_at pool) in
  let processed = Atomic.make 0 in
  Cpool_mc.Mc_pool.add pool handles.(0) 15;
  let since_ns = Cpool_util.Clock.now_ns () in
  let worker i =
    Domain.spawn (fun () ->
        let h = handles.(i) in
        let rec go () =
          match Cpool_mc.Mc_pool.remove pool h with
          | Some depth ->
            Atomic.incr processed;
            if depth > 0 then begin
              Cpool_mc.Mc_pool.add pool h (depth - 1);
              Cpool_mc.Mc_pool.add pool h (depth - 1)
            end;
            go ()
          | None -> ()
        in
        go ();
        Cpool_mc.Mc_pool.deregister pool h)
  in
  let ds = List.init domains worker in
  List.iter Domain.join ds;
  let dt = Cpool_util.Clock.elapsed_s ~since_ns in
  (float_of_int (Atomic.get processed) /. dt, Atomic.get processed, Cpool_mc.Mc_pool.steals pool)

let run_domain_throughput () =
  print_endline "==== multicore: task-storm throughput (this machine) ====";
  let domains = min 8 (max 2 (Domain.recommended_domain_count ())) in
  Printf.printf "  binary task tree of depth 15 (65535 tasks), %d domains\n" domains;
  List.iter
    (fun (name, kind) ->
      let rate, tasks, steals = domain_throughput ~kind ~domains in
      Printf.printf "  %-8s %10.0f tasks/s  (%d tasks, %d steals)\n%!" name rate tasks steals)
    [
      ("linear", Cpool_mc.Mc_pool.Linear);
      ("random", Cpool_mc.Mc_pool.Random);
      ("tree", Cpool_mc.Mc_pool.Tree);
    ];
  print_newline ()

(* --- Part 4: sim vs real — the paper's steal statistics on both pools --- *)

(* The simulator reproduces the paper's numbers; the Mc_stats telemetry now
   reports the same quantities from the real OCaml 5 pool. Both sides run a
   balanced producer/consumer workload (half the participants produce, half
   consume), so the rows are directly comparable in shape: sparse consumers
   must steal often and in both worlds the batching of steal-half keeps
   elements-per-steal well above 1. Times differ by design (virtual us vs
   wall clock), so only the count-based columns are tabulated. *)

let real_producer_consumer ~kind ~domains ~per =
  let pool = Cpool_mc.Mc_pool.of_config { Cpool_mc.Mc_pool.Config.default with kind; segments = domains } in
  let handles = Array.init domains (Cpool_mc.Mc_pool.register_at pool) in
  let producers = domains / 2 in
  let removes = Atomic.make 0 in
  let ds =
    List.init domains (fun i ->
        Domain.spawn (fun () ->
            let h = handles.(i) in
            if i < producers then
              for k = 1 to per do
                Cpool_mc.Mc_pool.add pool h k
              done
            else begin
              let rec eat () =
                match Cpool_mc.Mc_pool.remove pool h with
                | Some _ ->
                  Atomic.incr removes;
                  eat ()
                | None -> ()
              in
              eat ()
            end;
            Cpool_mc.Mc_pool.deregister pool h))
  in
  List.iter Domain.join ds;
  Cpool_mc.Mc_pool.stats pool

let run_sim_vs_real cfg =
  print_endline "==== sim vs real: steal statistics (balanced producers/consumers) ====";
  let domains = min 8 (max 2 (Domain.recommended_domain_count ())) in
  let fc = Cpool_metrics.Render.float_cell in
  let rows =
    List.concat_map
      (fun (name, sim_kind, mc_kind) ->
        let sim =
          Steal_stats.run ~kind:sim_kind
            ~producer_counts:[ cfg.Exp_config.participants / 2 ]
            cfg
        in
        let cell = (List.hd sim.Steal_stats.rows).Steal_stats.balanced in
        let real = real_producer_consumer ~kind:mc_kind ~domains ~per:4_000 in
        [
          [
            name;
            Printf.sprintf "sim (%d procs)" cfg.Exp_config.participants;
            fc (100.0 *. cell.Steal_stats.steal_fraction);
            fc cell.Steal_stats.segments_per_steal;
            fc cell.Steal_stats.elements_per_steal;
          ];
          [
            name;
            Printf.sprintf "real (%d domains)" domains;
            fc (100.0 *. Cpool_mc.Mc_stats.steal_fraction real);
            fc (Cpool_mc.Mc_stats.mean_segments_per_steal real);
            fc (Cpool_mc.Mc_stats.mean_elements_per_steal real);
          ];
        ])
      [
        ("linear", Cpool.Pool.Linear, Cpool_mc.Mc_pool.Linear);
        ("random", Cpool.Pool.Random, Cpool_mc.Mc_pool.Random);
        ("tree", Cpool.Pool.Tree, Cpool_mc.Mc_pool.Tree);
      ]
  in
  print_endline
    (Cpool_metrics.Render.table
       ~headers:[ "kind"; "pool"; "% removes stealing"; "segs/steal"; "elems/steal" ]
       ~rows ());
  print_endline
    "(real domains interleave unfairly, unlike the simulator's virtual time: a \
     consumer that catches up spin-searches the momentarily empty pool, so every \
     probe until its next successful steal counts toward segs/steal, and \
     steal-half over the producer's accumulated backlog raises elems/steal.)";
  print_newline ()

let () =
  let paper, micro, names = parse_args () in
  let cfg = if paper then Exp_config.paper else Exp_config.quick in
  Printf.printf "concurrent-pools bench: preset=%s\n\n%!" (Exp_config.name cfg);
  run_experiments cfg names;
  if micro then begin
    run_micro ();
    run_domain_throughput ();
    run_sim_vs_real cfg
  end;
  print_endline "bench done"
